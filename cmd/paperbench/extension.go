package main

import (
	"context"
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/costas"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/walk"
)

// runExtension measures the §VI future-work implementation: dependent
// multi-walk with a shared crossroads pool vs the paper's independent
// scheme, at equal walker counts. This is an extension beyond the paper's
// evaluation (the paper only sketches the design goals), so there are no
// reference numbers — the interesting output is the relative makespan and
// the communication volume, which goal (1) of §VI demands stay tiny.
func runExtension(sc Scale) {
	banner("Extension — §VI dependent multi-walk (crossroads pool)")
	sizes := sc.AblationSizes
	runs := sc.AblationRuns
	const walkers = 16
	note("sizes %v, %d runs, %d walkers; independent vs cooperative (pool=8, restart-from-pool p=0.5)", sizes, runs, walkers)

	tb := report.NewTable("", "n", "indep avg iters", "coop avg iters", "coop/indep", "offers/run", "accepted", "pool restarts")
	for _, n := range sizes {
		indep := stats.NewSample()
		coop := stats.NewSample()
		var offers, accepted, poolRestarts int64
		for r := 0; r < runs; r++ {
			seed := uint64(n)*500_009 + uint64(r)*37 + 1
			ri := walk.Virtual(context.Background(), modelFactory(n), walk.Config{
				Walkers: walkers, Factory: tunedFactory(n), MasterSeed: seed}, 0)
			if ri.Solved {
				indep.Add(float64(ri.WinnerIterations))
			}
			// The cooperative scheduler owns the restart policy, so its
			// engines run with internal restarts disabled.
			coopParams := costas.TunedParams(n)
			coopParams.RestartLimit = -1
			rc := walk.Cooperative(context.Background(), modelFactory(n), walk.CoopConfig{Config: walk.Config{
				Walkers: walkers, Factory: adaptive.Factory(coopParams), MasterSeed: seed}}, 0)
			if rc.Solved {
				coop.Add(float64(rc.WinnerIterations))
			}
			offers += rc.Offers
			accepted += rc.Accepted
			poolRestarts += rc.PoolRestart
		}
		ratio := 0.0
		if indep.Mean() > 0 {
			ratio = coop.Mean() / indep.Mean()
		}
		tb.AddRow(fmt.Sprint(n),
			report.Count(int64(indep.Mean())), report.Count(int64(coop.Mean())),
			fmt.Sprintf("%.2f", ratio),
			report.Count(offers/int64(runs)), report.Count(accepted/int64(runs)),
			report.Count(poolRestarts/int64(runs)))
	}
	fmt.Print(tb.String())
	note("")
	note("communication stays tiny (accepted ≪ offers; a few pooled restarts per run),")
	note("satisfying §VI's goal (1); whether crossroads help depends on instance size —")
	note("at these sizes independent restarts are already near-optimal because runtimes")
	note("are near-exponential (Fig. 4), which is precisely why the paper left")
	note("cooperation as future work.")
}
