package main

// Scale is an experiment-size preset. The paper's exact grids (scale
// "paper") need CPU-days on one machine — e.g. 100 sequential runs of
// CAP 20 alone are ≈2e9 engine iterations — so the default "laptop" preset
// shrinks instance sizes and run counts while keeping every structural
// property under test: exponential growth in n, min ≪ avg, near-linear
// multi-walk speed-up, halving times per core doubling, exponential
// runtime distributions. "quick" exists for smoke tests of the harness
// itself.
type Scale struct {
	Name string

	Table1Sizes []int
	Table1Runs  int

	Table2Sizes []int
	Table2Runs  int

	CPSizes []int
	CPRuns  int // local-search runs to average against the (deterministic) CP solver

	Table3Sizes []int
	Table3Cores []int
	Table3Runs  int

	Table4Sizes []int
	Table4Cores []int
	Table4Runs  int

	Table5SunoSizes   []int
	Table5HeliosSizes []int
	Table5Runs        int

	Fig2N     int
	Fig2Cores []int
	Fig2Runs  int

	Fig3Sizes []int
	Fig3Cores []int
	Fig3Runs  int

	Fig4N     int
	Fig4Cores []int
	Fig4Runs  int

	AblationSizes []int
	AblationRuns  int
}

var scales = map[string]Scale{
	"quick": {
		Name:              "quick",
		Table1Sizes:       []int{10, 11, 12},
		Table1Runs:        5,
		Table2Sizes:       []int{9, 10, 11},
		Table2Runs:        3,
		CPSizes:           []int{10, 11, 12},
		CPRuns:            3,
		Table3Sizes:       []int{12, 13},
		Table3Cores:       []int{1, 32, 64},
		Table3Runs:        3,
		Table4Sizes:       []int{12, 13},
		Table4Cores:       []int{512, 1024},
		Table4Runs:        2,
		Table5SunoSizes:   []int{12, 13},
		Table5HeliosSizes: []int{12},
		Table5Runs:        3,
		Fig2N:             13,
		Fig2Cores:         []int{32, 64, 128},
		Fig2Runs:          5,
		Fig3Sizes:         []int{12, 13},
		Fig3Cores:         []int{512, 1024, 2048},
		Fig3Runs:          2,
		Fig4N:             13,
		Fig4Cores:         []int{32, 64},
		Fig4Runs:          20,
		AblationSizes:     []int{12},
		AblationRuns:      5,
	},
	"laptop": {
		Name:              "laptop",
		Table1Sizes:       []int{13, 14, 15, 16, 17},
		Table1Runs:        20,
		Table2Sizes:       []int{10, 11, 12, 13, 14},
		Table2Runs:        10,
		CPSizes:           []int{12, 13, 14, 15, 16},
		CPRuns:            5,
		Table3Sizes:       []int{14, 15, 16, 17},
		Table3Cores:       []int{1, 32, 64, 128, 256},
		Table3Runs:        10,
		Table4Sizes:       []int{14, 15, 16},
		Table4Cores:       []int{512, 1024, 2048, 4096, 8192},
		Table4Runs:        5,
		Table5SunoSizes:   []int{14, 15, 16, 17},
		Table5HeliosSizes: []int{14, 15, 16},
		Table5Runs:        10,
		Fig2N:             16,
		Fig2Cores:         []int{32, 64, 128, 256},
		Fig2Runs:          20,
		Fig3Sizes:         []int{14, 15, 16},
		Fig3Cores:         []int{512, 1024, 2048, 4096, 8192},
		Fig3Runs:          5,
		Fig4N:             16,
		Fig4Cores:         []int{32, 64, 128, 256},
		Fig4Runs:          60,
		AblationSizes:     []int{13, 14, 15},
		AblationRuns:      10,
	},
	"paper": {
		Name:              "paper",
		Table1Sizes:       []int{16, 17, 18, 19, 20},
		Table1Runs:        100,
		Table2Sizes:       []int{13, 14, 15, 16, 17, 18},
		Table2Runs:        100,
		CPSizes:           []int{14, 16, 18, 19},
		CPRuns:            20,
		Table3Sizes:       []int{18, 19, 20, 21, 22},
		Table3Cores:       []int{1, 32, 64, 128, 256},
		Table3Runs:        50,
		Table4Sizes:       []int{21, 22, 23},
		Table4Cores:       []int{512, 1024, 2048, 4096, 8192},
		Table4Runs:        50,
		Table5SunoSizes:   []int{18, 19, 20, 21, 22},
		Table5HeliosSizes: []int{18, 19, 20, 21, 22},
		Table5Runs:        50,
		Fig2N:             22,
		Fig2Cores:         []int{32, 64, 128, 256},
		Fig2Runs:          50,
		Fig3Sizes:         []int{21, 22, 23},
		Fig3Cores:         []int{512, 1024, 2048, 4096, 8192},
		Fig3Runs:          50,
		Fig4N:             21,
		Fig4Cores:         []int{32, 64, 128, 256},
		Fig4Runs:          200,
		AblationSizes:     []int{16, 17, 18},
		AblationRuns:      50,
	},
}
