package main

import (
	"fmt"
	"time"

	"repro/internal/costas"
	"repro/internal/csp"
	"repro/internal/dialectic"
	"repro/internal/report"
)

// runTable2 reproduces Table II: Adaptive Search vs Dialectic Search
// (Kadioglu & Sellmann) on the CAP. The paper reports AS 5–8.3× faster
// with the ratio growing with instance size; we measure both solvers here
// under identical conditions (same machine, same model, wall-clock time).
func runTable2(sc Scale) {
	banner("Table II — Adaptive Search vs Dialectic Search")
	note("scale=%s: sizes %v, %d runs each (paper: n=13..18, 100 runs on a P-III 733 MHz)", sc.Name, sc.Table2Sizes, sc.Table2Runs)

	tb := report.NewTable("", "n", "DS avg(s)", "AS avg(s)", "DS/AS", "paper DS/AS")
	for _, n := range sc.Table2Sizes {
		dsSec := measureDS(n, sc.Table2Runs)
		asSec := measureAS(n, sc.Table2Runs)
		ratio := 0.0
		if asSec > 0 {
			ratio = dsSec / asSec
		}
		paperRatio := "-"
		for _, r := range paperTable2 {
			if r.N == n {
				paperRatio = fmt.Sprintf("%.2f", r.Ratio)
			}
		}
		tb.AddRow(fmt.Sprint(n), report.Secs(dsSec), report.Secs(asSec),
			fmt.Sprintf("%.2f", ratio), paperRatio)
	}
	fmt.Print(tb.String())

	fmt.Println("\nPaper's Table II (seconds on a Pentium-III 733 MHz):")
	pt := report.NewTable("", "n", "DS", "AS", "DS/AS")
	for _, r := range paperTable2 {
		pt.AddRow(fmt.Sprint(r.N), report.Secs(r.DSsec), report.Secs(r.ASsec), fmt.Sprintf("%.2f", r.Ratio))
	}
	fmt.Print(pt.String())
	note("")
	note("shape check: AS wins at every size and the advantage grows with n.")
}

// measureSolver averages the sequential wall time of one engine factory
// over `runs` seeded solves — both Table II columns go through the same
// generic csp.Engine path.
func measureSolver(label string, factory csp.Factory, n, runs int, seedMul, seedAdd uint64) float64 {
	total := 0.0
	for r := 0; r < runs; r++ {
		e := factory(costas.New(n, costas.Options{}), uint64(n*runs+r)*seedMul+seedAdd)
		start := time.Now()
		if !e.Solve() {
			note("warning: %s did not solve n=%d (run %d)", label, n, r)
		}
		total += time.Since(start).Seconds()
	}
	return total / float64(runs)
}

func measureDS(n, runs int) float64 {
	return measureSolver("DS", dialectic.Factory(dialectic.Params{}), n, runs, 31, 7)
}

func measureAS(n, runs int) float64 {
	return measureSolver("AS", tunedFactory(n), n, runs, 17, 3)
}
