package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/stats"
)

// cellSummary measures one (size, cores) cell of a parallel table on the
// virtual lockstep cluster and returns the makespan sample in iterations.
func cellSummary(n, cores, runs int, seedBase uint64) stats.Summary {
	return virtualRuns(n, cores, runs, seedBase).Summarize()
}

// runParallelTable renders one paper parallel table (III, IV or the two
// halves of V): rows avg/med/min/max seconds per size, one column per core
// count, measured on the virtual cluster and mapped to the platform's
// calibrated iteration rate.
func runParallelTable(title string, platform cluster.Platform, sizes, coresList []int,
	runs int, seedSalt uint64, paperRef map[int]map[int]float64) {

	banner(title)
	note("platform model: %s — %s", platform.String(), platform.Description)
	note("virtual lockstep cluster, %d runs per cell; seconds = winner iterations / platform rate", runs)

	header := []string{"n", "stat"}
	for _, c := range coresList {
		header = append(header, fmt.Sprintf("%d cores", c))
	}
	header = append(header, "paper avg (largest col)")
	tb := report.NewTable("", header...)

	bySize := map[int][]stats.Summary{}
	for _, n := range sizes {
		sums := make([]stats.Summary, len(coresList))
		for ci, c := range coresList {
			sums[ci] = cellSummary(n, c, runs, uint64(n)*1_000_003+uint64(c)*101+seedSalt)
		}
		bySize[n] = sums
		paperCell := "-"
		if row, ok := paperRef[n]; ok {
			if v, ok := row[coresList[len(coresList)-1]]; ok {
				paperCell = report.Secs(v)
			}
		}
		addStat := func(stat string, pick func(stats.Summary) float64, lastExtra string) {
			row := []string{fmt.Sprint(n), stat}
			for ci := range coresList {
				row = append(row, report.Secs(platform.Seconds(int64(pick(sums[ci])))))
			}
			row = append(row, lastExtra)
			tb.AddRow(row...)
			// only the first stat row shows n; blank it for the rest
		}
		addStat("avg", func(s stats.Summary) float64 { return s.Mean }, paperCell)
		addStat("med", func(s stats.Summary) float64 { return s.Median }, "")
		addStat("min", func(s stats.Summary) float64 { return s.Min }, "")
		addStat("max", func(s stats.Summary) float64 { return s.Max }, "")
	}
	fmt.Print(tb.String())

	// Shape check: speed-up across the measured core range.
	note("")
	note("shape checks (avg-time speed-ups across the core grid):")
	for _, n := range sizes {
		sums := bySize[n]
		sp := stats.Speedup(sums[0].Mean, sums[len(sums)-1].Mean)
		ideal := float64(coresList[len(coresList)-1]) / float64(coresList[0])
		note("  n=%d: ×%.1f from %d→%d cores (ideal ×%.0f)",
			n, sp, coresList[0], coresList[len(coresList)-1], ideal)
	}
	note("the paper reports near-linear speed-ups (e.g. ≈%.0f on 128 cores, ≈%.0f on 256).",
		paperSpeedup128, paperSpeedup256)
}

func runTable3(sc Scale) {
	runParallelTable("Table III — execution times on HA8000 (virtual)",
		cluster.HA8000, sc.Table3Sizes, sc.Table3Cores, sc.Table3Runs, 333, paperTable3)
}

func runTable4(sc Scale) {
	runParallelTable("Table IV — execution times on JUGENE Blue Gene/P (virtual)",
		cluster.Jugene, sc.Table4Sizes, sc.Table4Cores, sc.Table4Runs, 444, paperTable4)
}

func runTable5(sc Scale) {
	runParallelTable("Table V (a) — execution times on GRID'5000 Suno (virtual)",
		cluster.Suno, sc.Table5SunoSizes, sc.Table3Cores, sc.Table5Runs, 555, paperTable5Suno)
	heliosCores := []int{}
	for _, c := range sc.Table3Cores {
		if c <= cluster.Helios.MaxCores {
			heliosCores = append(heliosCores, c)
		}
	}
	runParallelTable("Table V (b) — execution times on GRID'5000 Helios (virtual)",
		cluster.Helios, sc.Table5HeliosSizes, heliosCores, sc.Table5Runs, 556, paperTable5Helios)
}
