package main

// This file transcribes the paper's published numbers (Tables I–V and the
// headline figures) so every experiment can print "paper vs measured" side
// by side, and EXPERIMENTS.md can be regenerated from one run.

// paperTable1Row is one row of Table I (sequential evaluation, 100 runs on
// a Xeon W5580 3.2 GHz).
type paperTable1Row struct {
	N          int
	AvgSec     float64
	AvgIters   int64
	AvgLocMin  int64
	MinSec     float64
	MinIters   int64
	MaxSec     float64
	MaxIters   int64
	RatioAvgMn float64 // avg/min column
}

var paperTable1 = []paperTable1Row{
	{16, 0.08, 12665, 6853, 0.00, 212, 0.45, 69894, 60},
	{17, 0.59, 73430, 38982, 0.02, 2591, 2.39, 294580, 30},
	{18, 3.49, 395838, 207067, 0.03, 2789, 19.81, 2254001, 116},
	{19, 29.46, 2694319, 1372671, 0.31, 28911, 127.78, 11619940, 95},
	{20, 250.68, 20536809, 10278723, 3.89, 319368, 1097.06, 89791761, 66},
}

// paperTable2Row is one row of Table II (Dialectic Search vs Adaptive
// Search, seconds on a Pentium-III 733 MHz, averages of 100 runs).
type paperTable2Row struct {
	N     int
	DSsec float64
	ASsec float64
	Ratio float64
}

var paperTable2 = []paperTable2Row{
	{13, 0.05, 0.01, 5.00},
	{14, 0.26, 0.05, 5.20},
	{15, 1.31, 0.24, 5.46},
	{16, 7.74, 0.97, 7.98},
	{17, 53.40, 7.58, 7.04},
	{18, 370.00, 44.49, 8.32},
}

// paperTable3 maps instance size → cores → average seconds on HA8000
// (Table III; 50 runs).
var paperTable3 = map[int]map[int]float64{
	18: {1: 6.76, 32: 0.25, 64: 0.23, 128: 0.24, 256: 0.26},
	19: {1: 54.54, 32: 1.84, 64: 1.00, 128: 0.72, 256: 0.55},
	20: {1: 367.24, 32: 13.82, 64: 8.66, 128: 3.74, 256: 2.18},
	21: {32: 160.42, 64: 81.72, 128: 38.56, 256: 16.01},
	22: {32: 501.23, 64: 249.73, 128: 128.47, 256: 60.80},
}

// paperTable4 maps instance size → cores → average seconds on the JUGENE
// Blue Gene/P (Table IV; 50 runs).
var paperTable4 = map[int]map[int]float64{
	21: {512: 43.66, 1024: 27.86, 2048: 10.21, 4096: 5.97, 8192: 2.84},
	22: {512: 265.12, 1024: 148.80, 2048: 76.24, 4096: 36.12, 8192: 20.00},
	23: {2048: 633.09, 4096: 354.69, 8192: 170.38},
}

// paperTable5Suno / Helios map size → cores → average seconds on GRID'5000
// (Table V; 50 runs).
var paperTable5Suno = map[int]map[int]float64{
	18: {1: 5.28, 32: 0.16, 64: 0.083, 128: 0.056, 256: 0.038},
	19: {1: 49.5, 32: 1.37, 64: 0.59, 128: 0.41, 256: 0.219},
	20: {1: 372, 32: 12.2, 64: 5.86, 128: 2.67, 256: 1.79},
	21: {1: 3743, 32: 171, 64: 51.4, 128: 34.9, 256: 17.2},
	22: {32: 731, 64: 381, 128: 200, 256: 103},
}

var paperTable5Helios = map[int]map[int]float64{
	18: {1: 8.16, 32: 0.24, 64: 0.11, 128: 0.06},
	19: {1: 52, 32: 2.3, 64: 0.87, 128: 0.40},
	20: {1: 444, 32: 14.3, 64: 7.63, 128: 4.52},
	21: {1: 5391, 32: 153, 64: 101, 128: 36.7},
	22: {32: 1218, 64: 520, 128: 220},
}

// Headline speed-up claims used as shape checks in the printed summaries.
const (
	paperSpeedup128 = 120.0 // "120 for 128 cores" (§I, §VI)
	paperSpeedup256 = 230.0 // "230 for 256 cores" (§I)
	// JUGENE: speed-up 15.33 for CAP 21 from 512→8192 cores (ideal 16).
	paperJugeneSpeedup21 = 15.33
	paperJugeneSpeedup22 = 13.25
)
