package main

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/costas"
	"repro/internal/report"
	"repro/internal/stats"
)

// ablationConfig is one model/engine variant of §IV-B's tuning narrative.
type ablationConfig struct {
	name   string
	desc   string
	opts   costas.Options
	params func(n int) adaptive.Params
}

// runAblation measures the model refinements §IV-B claims: the error
// weight function, Chang's bound, and the dedicated reset procedure, plus
// the paper-literal parameter set vs this implementation's tuned set.
func runAblation(sc Scale) {
	banner("Ablations — §IV-B model refinements")
	note("scale=%s: sizes %v, %d runs per cell; metric = mean engine iterations (capped)", sc.Name, sc.AblationSizes, sc.AblationRuns)

	configs := []ablationConfig{
		{
			name:   "tuned",
			desc:   "unit ERR, Chang bound, custom reset, tuned params (library default)",
			opts:   costas.Options{},
			params: costas.TunedParams,
		},
		{
			name:   "quadratic-err",
			desc:   "ERR(d)=n²−d² as §IV-B (paper: ≈17% faster than unit in its implementation)",
			opts:   costas.Options{Err: costas.ErrQuadratic},
			params: costas.TunedParams,
		},
		{
			name:   "full-triangle",
			desc:   "Chang bound disabled: all n−1 rows checked (paper: ≈30% slower)",
			opts:   costas.Options{FullTriangle: true},
			params: costas.TunedParams,
		},
		{
			name:   "generic-reset",
			desc:   "dedicated reset replaced by generic 5% re-randomisation (paper: ≈3.7× slower)",
			opts:   costas.Options{GenericReset: true},
			params: costas.TunedParams,
		},
		{
			name:   "paper-params",
			desc:   "RL=1/RP=5% literal paper tuning (plus restart safety net)",
			opts:   costas.PaperOptions(),
			params: costas.PaperParams,
		},
	}

	const iterCap = 20_000_000
	header := []string{"config"}
	for _, n := range sc.AblationSizes {
		header = append(header, fmt.Sprintf("n=%d iters", n), fmt.Sprintf("n=%d t(s)", n))
	}
	header = append(header, "solved")
	tb := report.NewTable("", header...)

	for _, cfg := range configs {
		row := []string{cfg.name}
		solved, total := 0, 0
		for _, n := range sc.AblationSizes {
			it := stats.NewSample()
			secs := stats.NewSample()
			for r := 0; r < sc.AblationRuns; r++ {
				total++
				p := cfg.params(n)
				p.MaxIterations = iterCap
				// Engines are driven through the generic csp.Engine
				// interface, like every other experiment harness.
				e := adaptive.Factory(p)(costas.New(n, cfg.opts), uint64(n)*7919+uint64(r)*104729+1)
				startIters := e.Stats().Iterations
				start := nowSeconds()
				if e.Solve() {
					solved++
					it.Add(float64(e.Stats().Iterations - startIters))
					secs.Add(nowSeconds() - start)
				}
			}
			if it.N() == 0 {
				row = append(row, "DNF", "-")
			} else {
				row = append(row, report.Count(int64(it.Mean())), report.Secs(secs.Mean()))
			}
		}
		row = append(row, fmt.Sprintf("%d/%d", solved, total))
		tb.AddRow(row...)
		note("%-14s %s", cfg.name+":", cfg.desc)
	}
	fmt.Println()
	fmt.Print(tb.String())
	note("")
	note("documented deviation: in this Go implementation the unit error function")
	note("outperforms the paper's quadratic weighting; the Chang-bound and custom-")
	note("reset directions match the paper. See EXPERIMENTS.md for discussion.")
}
