package main

import (
	"fmt"

	"repro/internal/report"
)

// runTable1 reproduces Table I: evaluation of the sequential
// implementation — per instance size, the average/min/max execution time,
// iteration count and number of local minima over repeated runs, plus the
// avg/min ratio whose large values motivate the multi-walk parallelisation.
func runTable1(sc Scale) {
	banner("Table I — sequential Adaptive Search evaluation")
	local := localPlatform()
	note("scale=%s: sizes %v, %d runs each (paper: n=16..20, 100 runs)", sc.Name, sc.Table1Sizes, sc.Table1Runs)
	note("local engine rate: %.0f iters/s (times below are measured wall clock)", local.ItersPerSec)

	tb := report.NewTable("",
		"n", "avg(s)", "min(s)", "max(s)", "avg iters", "min iters", "max iters", "avg locmin", "ratio avg/min")
	growth := []float64{}
	prevAvg := 0.0
	for _, n := range sc.Table1Sizes {
		runs := sequentialRuns(n, sc.Table1Runs, uint64(n)*1000, 0)
		it := itersToSample(runs)
		lm := func() float64 {
			var sum int64
			for _, r := range runs {
				sum += r.LocalMin
			}
			return float64(sum) / float64(len(runs))
		}()
		wall := func() (avg, min, max float64) {
			for i, r := range runs {
				s := r.Wall.Seconds()
				avg += s
				if i == 0 || s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			avg /= float64(len(runs))
			return
		}
		avgS, minS, maxS := wall()
		ratio := 0.0
		if it.Min() > 0 {
			ratio = it.Mean() / it.Min()
		}
		tb.AddRow(
			fmt.Sprint(n),
			report.Secs(avgS), report.Secs(minS), report.Secs(maxS),
			report.Count(int64(it.Mean())), report.Count(int64(it.Min())), report.Count(int64(it.Max())),
			report.Count(int64(lm)),
			fmt.Sprintf("%.0f", ratio),
		)
		if prevAvg > 0 {
			growth = append(growth, it.Mean()/prevAvg)
		}
		prevAvg = it.Mean()
	}
	fmt.Print(tb.String())

	fmt.Println("\nPaper's Table I (Xeon W5580 3.2 GHz, 100 runs):")
	pt := report.NewTable("", "n", "avg(s)", "avg iters", "avg locmin", "ratio")
	for _, r := range paperTable1 {
		pt.AddRow(fmt.Sprint(r.N), report.Secs(r.AvgSec), report.Count(r.AvgIters),
			report.Count(r.AvgLocMin), fmt.Sprintf("%.0f", r.RatioAvgMn))
	}
	fmt.Print(pt.String())

	note("")
	note("shape checks:")
	for i, g := range growth {
		note("  iteration growth n=%d→%d: ×%.1f (paper's per-size growth is ×5–8)",
			sc.Table1Sizes[i], sc.Table1Sizes[i+1], g)
	}
	note("  best runs are far faster than average (ratio column) — the property")
	note("  §V-A exploits: parallel multi-walk wall time approaches the minimum.")
}
