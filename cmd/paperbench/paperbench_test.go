package main

import "testing"

func TestScalesWellFormed(t *testing.T) {
	for name, sc := range scales {
		if sc.Name != name {
			t.Errorf("scale %q has Name %q", name, sc.Name)
		}
		if len(sc.Table1Sizes) == 0 || sc.Table1Runs < 1 ||
			len(sc.Table2Sizes) == 0 || sc.Table2Runs < 1 ||
			len(sc.CPSizes) == 0 || sc.CPRuns < 1 ||
			len(sc.Table3Sizes) == 0 || len(sc.Table3Cores) == 0 || sc.Table3Runs < 1 ||
			len(sc.Table4Sizes) == 0 || len(sc.Table4Cores) == 0 || sc.Table4Runs < 1 ||
			len(sc.Table5SunoSizes) == 0 || len(sc.Table5HeliosSizes) == 0 || sc.Table5Runs < 1 ||
			sc.Fig2N < 2 || len(sc.Fig2Cores) < 2 || sc.Fig2Runs < 1 ||
			len(sc.Fig3Sizes) == 0 || len(sc.Fig3Cores) < 2 || sc.Fig3Runs < 1 ||
			sc.Fig4N < 2 || len(sc.Fig4Cores) < 2 || sc.Fig4Runs < 2 ||
			len(sc.AblationSizes) == 0 || sc.AblationRuns < 1 {
			t.Errorf("scale %q has empty/invalid fields: %+v", name, sc)
		}
		// Core grids must be increasing (speed-up baselines assume it).
		for _, grid := range [][]int{sc.Table3Cores, sc.Table4Cores, sc.Fig2Cores, sc.Fig3Cores, sc.Fig4Cores} {
			for i := 1; i < len(grid); i++ {
				if grid[i] <= grid[i-1] {
					t.Errorf("scale %q: core grid %v not increasing", name, grid)
				}
			}
		}
	}
}

func TestPaperScaleMatchesPublishedGrids(t *testing.T) {
	sc := scales["paper"]
	// Table I: n = 16..20, 100 runs.
	if got, want := sc.Table1Sizes[0], 16; got != want {
		t.Errorf("paper Table1 starts at %d, want %d", got, want)
	}
	if sc.Table1Runs != 100 || sc.Table2Runs != 100 || sc.Table3Runs != 50 || sc.Fig4Runs != 200 {
		t.Errorf("paper run counts drifted: %+v", sc)
	}
	if sc.Fig2N != 22 || sc.Fig4N != 21 {
		t.Errorf("paper figure instances drifted: Fig2N=%d Fig4N=%d", sc.Fig2N, sc.Fig4N)
	}
	if last := sc.Table4Cores[len(sc.Table4Cores)-1]; last != 8192 {
		t.Errorf("paper JUGENE grid tops at %d, want 8192", last)
	}
}

func TestPaperDataInternallyConsistent(t *testing.T) {
	// Table I rows ordered by n with strictly growing average iterations.
	for i := 1; i < len(paperTable1); i++ {
		if paperTable1[i].N != paperTable1[i-1].N+1 {
			t.Fatal("paper Table I sizes not consecutive")
		}
		if paperTable1[i].AvgIters <= paperTable1[i-1].AvgIters {
			t.Fatal("paper Table I iteration counts not increasing")
		}
	}
	// Table II ratios consistent with the quoted times (±2 %).
	for _, r := range paperTable2 {
		ratio := r.DSsec / r.ASsec
		if ratio < r.Ratio*0.98 || ratio > r.Ratio*1.02 {
			t.Errorf("paper Table II n=%d: DS/AS %.2f vs quoted %.2f", r.N, ratio, r.Ratio)
		}
	}
	// Parallel tables: times decrease (weakly) as cores grow for the
	// published rows used in comparisons.
	for n, row := range paperTable4 {
		prev := -1.0
		for _, cores := range []int{512, 1024, 2048, 4096, 8192} {
			v, ok := row[cores]
			if !ok {
				continue
			}
			if prev > 0 && v > prev {
				t.Errorf("paper Table IV n=%d: time rises %f→%f", n, prev, v)
			}
			prev = v
		}
	}
}

func TestTableIIIReferenceAnchors(t *testing.T) {
	// Spot anchors transcribed from the paper — guards against typos in
	// paperdata.go silently corrupting the side-by-side output.
	if paperTable3[20][256] != 2.18 {
		t.Error("Table III CAP20/256 anchor drifted")
	}
	if paperTable4[23][8192] != 170.38 {
		t.Error("Table IV CAP23/8192 anchor drifted")
	}
	if paperTable5Suno[19][256] != 0.219 {
		t.Error("Table V Suno CAP19/256 anchor drifted")
	}
	if paperTable1[4].AvgIters != 20536809 {
		t.Error("Table I CAP20 iterations anchor drifted")
	}
}
