package main

import (
	"fmt"
	"time"

	"repro/internal/cp"
	"repro/internal/report"
)

// runCP reproduces the §IV-C text comparison: a complete CP solver is far
// slower than Adaptive Search on the CAP and the gap explodes with n (the
// paper quotes ≈400× at n = 19 for a Comet program).
func runCP(sc Scale) {
	banner("§IV-C — Adaptive Search vs complete CP solver")
	note("scale=%s: sizes %v; CP is deterministic, AS averaged over %d runs", sc.Name, sc.CPSizes, sc.CPRuns)

	tb := report.NewTable("", "n", "CP time(s)", "CP nodes", "CP backtracks", "AS avg(s)", "CP/AS")
	for _, n := range sc.CPSizes {
		s, err := cp.New(n)
		if err != nil {
			note("cp: %v", err)
			continue
		}
		start := time.Now()
		sol, err := s.FirstSolution()
		cpSec := time.Since(start).Seconds()
		if err != nil || sol == nil {
			note("cp failed on n=%d: %v", n, err)
			continue
		}
		asSec := measureAS(n, sc.CPRuns)
		ratio := 0.0
		if asSec > 0 {
			ratio = cpSec / asSec
		}
		tb.AddRow(fmt.Sprint(n), fmt.Sprintf("%.4f", cpSec),
			report.Count(s.Stats().Nodes), report.Count(s.Stats().Backtracks),
			fmt.Sprintf("%.4f", asSec), fmt.Sprintf("%.1f", ratio))
	}
	fmt.Print(tb.String())
	note("")
	note("shape check: the CP/AS ratio grows rapidly with n; the paper quotes ≈400×")
	note("at n=19 (Comet). Small sizes may favour CP — first solutions are found")
	note("early in lexicographic order — the regime of interest is medium n and up.")
}
