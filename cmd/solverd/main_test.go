package main

// Smoke test: boots the same service the daemon wires up and checks the
// health and catalogue endpoints answer — the daemon package stays inside
// the tier-1 test net without binding a real port.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/service"
)

func TestDaemonServiceBoots(t *testing.T) {
	srv := service.New(service.Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/v1/models"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
}
