// Command solverd serves the solver over HTTP: every model in the
// registry, every search method, sync or async, on a bounded worker pool
// (see internal/service for the API).
//
// Quickstart:
//
//	solverd -addr :8080 &
//	curl -s localhost:8080/v1/models | jq .
//	curl -s -X POST localhost:8080/v1/solve \
//	    -d '{"model": "costas n=18", "options": {"walkers": 4}}' | jq .
//	curl -s -X POST localhost:8080/v1/batch \
//	    -d '{"jobs": [{"model": "costas n=14"}, {"model": "nqueens n=64"}],
//	         "reuse_engines": true}' | jq .stats
//	curl -s localhost:8080/metrics | jq .
//
// Coordinator mode — one solverd fronting other solverds: pass worker
// node addresses instead of a worker count and every solve and batch is
// routed through a health-checked backend.Pool (batch sharding with
// work-stealing, distributed first-success multi-walk):
//
//	solverd -addr :8081 &
//	solverd -addr :8082 &
//	solverd -addr :8080 -workers localhost:8081,localhost:8082
//
// Serving fast path (-cache-size, -rate, -burst, -client-header):
// explicit-seed deterministic solves are cached and replayed
// byte-identically without occupying a worker slot, identical concurrent
// solves coalesce into one in-flight run, and per-client token buckets
// refuse floods with 429 + Retry-After. /metrics exposes the cache,
// coalescing and 429 counters plus per-endpoint latency histograms.
//
// Overload + tail latency (-max-queue, -hedge): when more than
// -max-queue requests are already waiting for a worker slot the node
// sheds load with 503 + Retry-After — batch-class work first,
// interactive solves only at twice the limit — and /healthz degrades so
// a fronting coordinator routes around it. In coordinator mode -hedge
// duplicates a single solve to a second worker after that long without
// an answer and takes the first verdict.
//
// Campaign mode (-data, -join) — durable long-running searches that
// survive restarts (internal/campaign):
//
//	solverd -addr :8080 -data /var/lib/solverd        # campaign coordinator (+ local worker)
//	solverd -addr :8081 -join http://host:8080        # extra worker, joins dynamically
//
// A -data node persists campaign state (append-only checkpoint logs
// under the directory) and exposes /v1/campaigns; restarting it resumes
// every running campaign from its last checkpoints. A -join node runs
// no coordinator: it registers with one, heartbeats, and walks whatever
// shards it is leased. -campaign-capacity bounds concurrent shards per
// worker.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops, running
// solves are cancelled at their next probe quantum, async jobs drain.
//
// -pprof localhost:6060 serves net/http/pprof on a separate listener
// (never on the API address), so a live server can be profiled with
// `go tool pprof http://localhost:6060/debug/pprof/profile`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the DefaultServeMux, served only by the -pprof listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/campaign"
	"repro/internal/registry"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.String("workers", "0", "an integer: concurrent solve requests (0 = GOMAXPROCS); or a comma-separated worker node list (host1:8080,host2:8080) to run as a coordinator fronting those solverds")
		maxWalkers = flag.Int("max-walkers", 256, "per-request walker cap")
		maxBatch   = flag.Int("max-batch", 1024, "per-batch job cap")
		timeout    = flag.Duration("timeout", 0, "default per-request solve deadline (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (separate listener, e.g. localhost:6060; empty = disabled)")
		cacheSize  = flag.Int("cache-size", 0, "deterministic response cache entries (0 = default, negative = disable caching and coalescing)")
		rate       = flag.Float64("rate", 0, "per-client rate limit on solve/batch in requests/second (0 = unlimited); over the limit replies 429 + Retry-After")
		burst      = flag.Int("burst", 0, "rate-limit token-bucket depth (0 = 2×rate)")
		clientHdr  = flag.String("client-header", "", `request header naming the client for rate limiting (default "X-Client-Key"; clients without it are keyed by remote address)`)
		maxQueue   = flag.Int("max-queue", 0, "shed load when this many requests are queued for a worker slot: batch-class requests get 503 + Retry-After at the limit, interactive solves at 2x (0 = 16x workers, negative = never shed)")
		hedge      = flag.Duration("hedge", 0, "coordinator mode: hedge single solves against slow workers — duplicate the solve to the next member after this long without an answer, first verdict wins (0 = no hedging)")
		dataDir    = flag.String("data", "", "campaign data directory: enables the durable campaign coordinator (/v1/campaigns) backed by append-only logs under this directory, plus an in-process campaign worker")
		joinURL    = flag.String("join", "", "coordinator base URL (e.g. http://host:8080): run as a dynamic campaign worker registered there")
		campCap    = flag.Int("campaign-capacity", 1, "concurrent campaign shards this node walks")
	)
	flag.Parse()
	if *dataDir != "" && *joinURL != "" {
		log.Fatalf("solverd: -data and -join are mutually exclusive (a node is a campaign coordinator or a joining worker, not both)")
	}

	// -workers doubles as the coordinator switch: a plain integer sizes
	// the local worker pool, anything else is the node list to front.
	var (
		workerCount int
		pool        *backend.Pool
	)
	if n, err := strconv.Atoi(*workers); err == nil {
		workerCount = n
	} else {
		var members []backend.Backend
		for _, node := range strings.Split(*workers, ",") {
			node = strings.TrimSpace(node)
			if node == "" {
				continue
			}
			// Fail fast on typos: a worker node is host:port (or a full
			// URL), never a bare word — otherwise a mistyped count like
			// "4x" would boot a cleanly-logging coordinator whose every
			// request fails.
			if !strings.Contains(node, ":") {
				log.Fatalf("solverd: -workers entry %q is neither an integer worker count nor a host:port node address", node)
			}
			members = append(members, backend.NewRemote(node, backend.RemoteConfig{}))
		}
		p, err := backend.NewPool(members, backend.PoolConfig{HedgeAfter: *hedge})
		if err != nil {
			log.Fatalf("solverd: -workers %q: %v", *workers, err)
		}
		pool = p
		// A coordinator's request slots gate HTTP fan-out, not local CPU
		// work — size them for the fleet, not for this machine's cores.
		workerCount = 256
	}

	// Profiling sidecar: pprof lives on its own listener so it is never
	// exposed on the API address and perf investigations on a live server
	// need no code edits or restarts with special builds.
	if *pprofAddr != "" {
		go func() {
			log.Printf("solverd: pprof listening on %s (/debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("solverd: pprof listener: %v", err)
			}
		}()
	}

	cfg := service.Config{
		Workers:         workerCount,
		MaxWalkers:      *maxWalkers,
		MaxBatchJobs:    *maxBatch,
		DefaultTimeout:  *timeout,
		CacheSize:       *cacheSize,
		MaxQueueDepth:   *maxQueue,
		RateLimit:       *rate,
		RateBurst:       *burst,
		ClientKeyHeader: *clientHdr,
	}
	if pool != nil {
		cfg.Backend = pool
	}

	// Campaign wiring. A -data node owns the durable store and coordinator
	// and also walks shards itself (in-process worker, no HTTP hop); a
	// -join node only walks, against a remote coordinator.
	var (
		campStore  *campaign.Store
		campWorker *campaign.Worker
	)
	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	if *dataDir != "" {
		store, err := campaign.Open(*dataDir)
		if err != nil {
			log.Fatalf("solverd: %v", err)
		}
		campStore = store
		coord, err := campaign.NewCoordinator(campaign.CoordinatorConfig{Store: store})
		if err != nil {
			log.Fatalf("solverd: %v", err)
		}
		cfg.Campaigns = coord
		campWorker, err = campaign.NewWorker(campaign.WorkerConfig{Control: coord, Capacity: *campCap})
		if err != nil {
			log.Fatalf("solverd: %v", err)
		}
		log.Printf("solverd: campaign coordinator on %s (data %s, worker %s ×%d)", *addr, *dataDir, campWorker.ID(), *campCap)
	}
	if *joinURL != "" {
		ctl := campaign.NewHTTPControl(*joinURL, nil)
		var err error
		campWorker, err = campaign.NewWorker(campaign.WorkerConfig{Control: ctl, Capacity: *campCap})
		if err != nil {
			log.Fatalf("solverd: %v", err)
		}
		log.Printf("solverd: campaign worker %s ×%d joining %s", campWorker.ID(), *campCap, *joinURL)
	}
	if campWorker != nil {
		go func() { _ = campWorker.Run(workerCtx) }()
	}

	srv := service.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	go func() {
		if pool != nil {
			log.Printf("solverd: coordinating %s over nodes %s", pool.Name(), *workers)
		}
		log.Printf("solverd: listening on %s (models: %v)", *addr, registry.Names())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("solverd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Printf("solverd: %v — draining (budget %v)", sig, *drain)

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Cancel the service FIRST (concurrently with the HTTP drain): that
	// stops in-flight solves — sync ones included — at their next probe
	// quantum, so their handlers can return and httpSrv.Shutdown's
	// connection drain completes. The reverse order would leave a
	// deadline-less sync solve pinning the drain for its whole budget.
	svcErr := make(chan error, 1)
	go func() { svcErr <- srv.Shutdown(ctx) }()
	// Stop campaign walking before the HTTP drain: shard tasks discard
	// their partial epoch (at most one snapshot interval, by design) and
	// the durable store closes cleanly behind them.
	stopWorker()
	if campStore != nil {
		defer campStore.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("solverd: http shutdown: %v", err)
	}
	if err := <-svcErr; err != nil {
		log.Printf("solverd: job drain: %v", err)
		os.Exit(1)
	}
	fmt.Println("solverd: bye")
}
