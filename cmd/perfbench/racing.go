package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

// The racing suite measures time-to-first-solution of the racing
// portfolio against the two static baselines it must dominate:
//
//	<cell>_best_static — the single best method arm given ALL the
//	                     walkers (an oracle that knew the winner up
//	                     front; racing's target).
//	<cell>_rr          — the round-robin portfolio (walkers split over
//	                     the arms for the whole run; what you run when
//	                     you don't know the winner).
//	<cell>_racing      — the bandit allocator (method=racing): starts
//	                     like rr, observes windowed stats, reallocates
//	                     walkers toward the winning arm.
//
// Every run is lockstep-virtual at fixed seeds, so ItersOp — the
// winner's virtual time, the paper's machine-independent work unit — is
// bit-reproducible on any machine and any -cpu: the CI gate compares
// iteration counts, not wall clocks. NsOp is recorded for the local
// trajectory only.
const (
	racingSeeds = 5 // fixed seeds 1..racingSeeds, averaged
	racingArms  = "adaptive,tabu"

	// racingHeadline names the cell on which -smoke additionally requires
	// racing to beat the round-robin portfolio outright (the headline
	// claim — the cell's arms differ enough that the allocator's
	// concentration visibly pays); on every cell racing must stay within
	// -maxregress of the best static arm.
	racingHeadline = "allinterval_n24"
)

// racingCells: 2 models × 2 sizes, each hard enough that a solve spans
// multiple reallocation windows (the costas n≤14-class instances solve
// inside one window, where racing degenerates to round-robin by
// construction). The walker count is part of the cell definition: the
// gate compares MEANS over 5 fixed seeds of a min-over-walkers statistic
// whose distribution is heavy-tailed, so each cell uses the fleet size
// at which its baselines are stable enough to gate against — 16 walkers
// for the costas cells (at 8 a single unlucky arm sub-fleet dominates
// the round-robin mean), 8 for the allinterval cells (at 16 the static
// oracle's min-of-16 outruns any portfolio's min-of-8 sub-fleet by
// sampling alone).
var racingCells = []struct {
	label, model string
	walkers      int
}{
	{"costas_n15", "costas n=15", 16},
	{"costas_n16", "costas n=16", 16},
	{"allinterval_n20", "allinterval n=20", 8},
	{"allinterval_n24", "allinterval n=24", 8},
}

// racingSolve runs one fixed-seed lockstep solve and returns the
// winner's virtual time (time-to-first-solution in iterations).
func racingSolve(spec string, walkers int, seed uint64) (int64, time.Duration, error) {
	start := time.Now()
	res, err := core.SolveSpec(context.Background(), spec, core.Options{
		Walkers: walkers,
		Virtual: true,
		Seed:    seed,
	})
	if err != nil {
		return 0, 0, err
	}
	if !res.Solved {
		return 0, 0, fmt.Errorf("spec %q seed %d did not solve", spec, seed)
	}
	return res.Iterations, time.Since(start), nil
}

// racingMean averages makespan and wall time over the fixed seed set.
func racingMean(spec string, walkers int) (iters float64, ns float64, err error) {
	var sumIters int64
	var sumWall time.Duration
	for seed := uint64(1); seed <= racingSeeds; seed++ {
		it, wall, err := racingSolve(spec, walkers, seed)
		if err != nil {
			return 0, 0, err
		}
		sumIters += it
		sumWall += wall
	}
	return float64(sumIters) / racingSeeds, float64(sumWall.Nanoseconds()) / racingSeeds, nil
}

// runRacingSuite produces the racing/* rows.
func runRacingSuite() ([]Result, error) {
	out := make([]Result, 0, 3*len(racingCells))
	row := func(name string, iters, ns float64) {
		fmt.Fprintf(os.Stderr, "%-32s %12.0f iters/op (%.0f ns/op)\n", name, iters, ns)
		out = append(out, Result{Name: name, NsOp: ns, ItersOp: iters})
	}
	for _, cell := range racingCells {
		// Best static arm: every walker on one method, best arm wins.
		bestIters, bestNs := 0.0, 0.0
		for _, arm := range []string{"adaptive", "tabu"} {
			iters, ns, err := racingMean(cell.model+" method="+arm, cell.walkers)
			if err != nil {
				return out, err
			}
			if bestIters == 0 || iters < bestIters {
				bestIters, bestNs = iters, ns
			}
		}
		row("racing/"+cell.label+"_best_static", bestIters, bestNs)

		rrIters, rrNs, err := racingMean(cell.model+" method=portfolio portfolio="+racingArms, cell.walkers)
		if err != nil {
			return out, err
		}
		row("racing/"+cell.label+"_rr", rrIters, rrNs)

		raceIters, raceNs, err := racingMean(cell.model+" method=racing portfolio="+racingArms, cell.walkers)
		if err != nil {
			return out, err
		}
		row("racing/"+cell.label+"_racing", raceIters, raceNs)
	}
	return out, nil
}

// gateRacing applies the -smoke gates to racing/* rows: on every cell
// racing's mean makespan must stay within maxregress of the best static
// arm's, and on the headline cell it must beat the round-robin
// portfolio outright. Returns true when a gate failed.
func gateRacing(results []Result, maxregress float64) bool {
	iters := map[string]float64{}
	for _, r := range results {
		iters[r.Name] = r.ItersOp
	}
	failed := false
	for _, cell := range racingCells {
		race := iters["racing/"+cell.label+"_racing"]
		static := iters["racing/"+cell.label+"_best_static"]
		rr := iters["racing/"+cell.label+"_rr"]
		if race <= 0 || static <= 0 || rr <= 0 {
			fmt.Fprintf(os.Stderr, "perfbench: FAIL: racing rows missing for cell %s\n", cell.label)
			failed = true
			continue
		}
		if race > static*(1+maxregress) {
			fmt.Fprintf(os.Stderr,
				"perfbench: FAIL: racing on %s needs %.0f iters vs best static arm's %.0f (%.2fx, tolerance %.0f%%)\n",
				cell.label, race, static, race/static, 100*maxregress)
			failed = true
		}
		if cell.label == racingHeadline && race > rr {
			fmt.Fprintf(os.Stderr,
				"perfbench: FAIL: racing on headline %s needs %.0f iters vs round-robin's %.0f — the allocator must beat the static portfolio it replaces\n",
				cell.label, race, rr)
			failed = true
		}
	}
	return failed
}
