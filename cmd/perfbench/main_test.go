package main

import (
	"encoding/json"
	"testing"
)

// TestRunAllSmoke runs the full suite at one iteration per benchmark: every
// benchmark must execute, report sane numbers, and the steady-state set
// must be allocation-free (the property `perfbench -smoke` gates CI on).
func TestRunAllSmoke(t *testing.T) {
	testing.Init()
	results, err := runAll("1x")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 6 {
		t.Fatalf("suite shrank: %d benchmarks", len(results))
	}
	if _, err := runAll("not-a-benchtime"); err == nil {
		t.Error("runAll accepted an unparseable benchtime")
	}
	seen := map[string]bool{}
	steady := 0
	for _, r := range results {
		if seen[r.Name] {
			t.Fatalf("duplicate benchmark name %q", r.Name)
		}
		seen[r.Name] = true
		if r.NsOp <= 0 {
			t.Errorf("%s: non-positive ns/op %v", r.Name, r.NsOp)
		}
		if r.SteadyState {
			steady++
			if r.AllocsOp > 0 {
				t.Errorf("%s: steady-state benchmark allocates %d allocs/op", r.Name, r.AllocsOp)
			}
		}
	}
	for _, name := range []string{
		"kernel/swap_delta_n18", "kernel/scan_swaps_n18",
		"kernel/scan_swaps_n96_b16", "kernel/scan_swaps_n96_b48", "kernel/scan_swaps_n96_b96",
		"table1/sequential_n13",
	} {
		if !seen[name] {
			t.Errorf("benchmark %q missing from suite", name)
		}
	}
	if steady == 0 {
		t.Error("no steady-state benchmarks: the -smoke allocation gate is vacuous")
	}
}

// TestMergeBaseline checks speedup wiring against a synthetic baseline.
func TestMergeBaseline(t *testing.T) {
	results := []Result{{Name: "a", NsOp: 50}, {Name: "b", NsOp: 10}}
	raw := []byte(`{"schema":"bench_costas/v1","benchmarks":[{"name":"a","ns_op":100}]}`)
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	mergeBaseline(results, &base)
	if results[0].BaselineNsOp != 100 || results[0].Speedup != 2 {
		t.Errorf("a: baseline %v speedup %v, want 100 / 2.0", results[0].BaselineNsOp, results[0].Speedup)
	}
	if results[1].BaselineNsOp != 0 || results[1].Speedup != 0 {
		t.Errorf("b: unexpected baseline fields %+v", results[1])
	}
}
