// Command perfbench records the repository's performance trajectory: it
// runs the paper-table macro-benchmarks and the CAP hot-path kernel
// microbenches through testing.Benchmark and emits machine-readable
// BENCH_costas.json, comparing against the previously recorded numbers.
//
// Usage:
//
//	perfbench                          # full run, write BENCH_costas.json
//	perfbench -smoke                   # quick CI mode + allocation gate
//	perfbench -benchtime 5s -out /tmp/bench.json
//	perfbench -baseline BENCH_costas.json
//
// In -smoke mode each benchmark runs a short time-based count (0.3s —
// fast enough for CI, long enough that ns/op is steady-state and
// comparable to the committed 2s numbers) and the run FAILS (exit 1) if
// any steady-state benchmark — the kernel microbenches and the post-Bind
// engine loop — reports a non-zero allocs/op: the zero-allocation hot
// path is a regression gate, not an aspiration. Smoke mode also gates
// *speed*: a steady-state benchmark that runs more than -maxregress
// (default 10 %) slower than its committed baseline ns/op fails the run,
// so a hot-path slowdown cannot land silently even when it allocates
// nothing. To keep the committed trajectory clean, smoke mode does NOT
// overwrite BENCH_costas.json unless -out is given explicitly.
//
// When a baseline file is present (by default the committed
// BENCH_costas.json), each benchmark also reports the recorded baseline
// ns/op and the speedup of this run against it, so the committed file
// carries the before/after trajectory from PR to PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/costas"
	"repro/internal/csp"
	"repro/internal/rng"
	"repro/internal/walk"

	"context"
)

// Result is one benchmark's record in the BENCH_costas.json schema
// (documented in README.md).
type Result struct {
	// Name identifies the benchmark: "kernel/..." are hot-path
	// microbenches, "engine/..." steady-state engine loops, "tableN/..."
	// paper-table macro units.
	Name string `json:"name"`
	// NsOp is wall nanoseconds per operation.
	NsOp float64 `json:"ns_op"`
	// AllocsOp / BytesOp are heap allocations and bytes per operation.
	AllocsOp int64 `json:"allocs_op"`
	BytesOp  int64 `json:"bytes_op"`
	// ItersOp is engine repair iterations per operation for solve
	// benchmarks (the machine-independent work unit of the paper).
	ItersOp float64 `json:"iters_op,omitempty"`
	// BaselineNsOp is the previously recorded ns/op for this benchmark
	// (from the -baseline file), and Speedup = BaselineNsOp / NsOp.
	BaselineNsOp float64 `json:"baseline_ns_op,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	// SteadyState marks benchmarks gated to 0 allocs/op in -smoke mode.
	SteadyState bool `json:"steady_state,omitempty"`
	// P99NsOp and QPS extend "serving/..." rows, where one op is one HTTP
	// request through a loopback solverd: NsOp is the p50 request
	// latency, P99NsOp the 99th percentile, QPS the sustained closed-loop
	// throughput.
	P99NsOp float64 `json:"p99_ns_op,omitempty"`
	QPS     float64 `json:"qps,omitempty"`
}

// File is the top-level BENCH_costas.json document.
type File struct {
	Schema     string   `json:"schema"`
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	CPUs       int      `json:"cpus"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

var sink int // defeats dead-code elimination in the microbenches

// runAll executes the benchmark suite at the given benchtime and returns
// the results in declaration order. A benchmark that aborts (b.Fatal
// inside testing.Benchmark yields a zero result) surfaces as an error —
// zero ns/op must never be recorded as a real measurement.
func runAll(benchtime string) ([]Result, error) {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, fmt.Errorf("invalid benchtime %q: %w", benchtime, err)
	}
	var failed error
	out := make([]Result, 0, 8)
	add := func(name string, steady bool, iters float64, r testing.BenchmarkResult) {
		if r.N == 0 && failed == nil {
			failed = fmt.Errorf("benchmark %s failed (zero result: a solve aborted or the benchmark called Fatal)", name)
		}
		out = append(out, Result{
			Name:        name,
			NsOp:        float64(r.NsPerOp()),
			AllocsOp:    r.AllocsPerOp(),
			BytesOp:     r.AllocedBytesPerOp(),
			ItersOp:     iters,
			SteadyState: steady,
		})
	}

	// kernel/swap_delta_n18 — the min-conflict probe kernel itself: pure
	// read-only delta evaluation over the flattened difference triangle.
	{
		m := costas.New(18, costas.Options{})
		m.Bind(csp.RandomConfiguration(18, rng.New(1)))
		add("kernel/swap_delta_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for k := 0; k < b.N; k++ {
				i := k % 18
				j := (i + 1 + k%17) % 18
				s += m.SwapDelta(i, j)
			}
			sink = s
		}))
	}

	// kernel/cost_if_swap_n18 — the same probe through the plain
	// csp.Model interface (what non-delta engines pay).
	{
		m := costas.New(18, costas.Options{})
		m.Bind(csp.RandomConfiguration(18, rng.New(1)))
		add("kernel/cost_if_swap_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for k := 0; k < b.N; k++ {
				i := k % 18
				j := (i + 1 + k%17) % 18
				s += m.CostIfSwap(i, j)
			}
			sink = s
		}))
	}

	// kernel/scan_swaps_n18 — the batched neighborhood probe: one op is a
	// whole ScanSwaps pass computing all n−1 candidate deltas for one
	// variable, so the amortized per-candidate cost is ns_op/(n−1);
	// compare against kernel/swap_delta_n18's per-probe cost to see the
	// batch win (the acceptance bar is ≤ 0.5× per candidate).
	{
		m := costas.New(18, costas.Options{})
		m.Bind(csp.RandomConfiguration(18, rng.New(1)))
		deltas := make([]int, 18)
		add("kernel/scan_swaps_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for k := 0; k < b.N; k++ {
				m.ScanSwaps(k%18, deltas)
				s += deltas[(k+1)%18]
			}
			sink = s
		}))
	}

	// kernel/scan_swaps_n96_b* — the ScanBlock sweep on a wide instance
	// (n = 96 takes the gather path: rows wider than one machine word, so
	// chunking the candidate set is what keeps the delta slab hot). The
	// sweep documents the block-size tradeoff DefaultScanBlock was picked
	// from; every block size computes bit-identical deltas.
	for _, blk := range []int{16, 48, 96} {
		m := costas.New(96, costas.Options{ScanBlock: blk})
		m.Bind(csp.RandomConfiguration(96, rng.New(1)))
		deltas := make([]int, 96)
		add(fmt.Sprintf("kernel/scan_swaps_n96_b%d", blk), true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			s := 0
			for k := 0; k < b.N; k++ {
				m.ScanSwaps(k%96, deltas)
				s += deltas[(k+1)%96]
			}
			sink = s
		}))
	}

	// kernel/commit_swap_n18 — the write path: probe once, commit with
	// the probed delta (the DeltaModel contract engines use).
	{
		m := costas.New(18, costas.Options{})
		m.Bind(csp.RandomConfiguration(18, rng.New(1)))
		add("kernel/commit_swap_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				i := k % 18
				j := (i + 1 + k%17) % 18
				m.CommitSwap(i, j, m.SwapDelta(i, j))
			}
		}))
	}

	// kernel/bind_n18 — full counter rebuild (reset/restart path).
	{
		m := costas.New(18, costas.Options{})
		cfg := csp.RandomConfiguration(18, rng.New(1))
		add("kernel/bind_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				m.Bind(cfg)
			}
		}))
	}

	// engine/adaptive_steady_n18 — one repair iteration of the post-Bind
	// Adaptive Search loop, restarts included; the 0 allocs/op gate.
	{
		m := costas.New(18, costas.Options{})
		e := adaptive.NewEngine(m, costas.TunedParams(18), 7)
		scratch := make([]int, 18)
		reseed := rng.New(99)
		e.Step(512) // warm past one-time work
		add("engine/adaptive_steady_n18", true, 0, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				if e.Solved() {
					reseed.PermInto(scratch)
					e.RestartFrom(scratch)
				}
				e.Step(1)
			}
		}))
	}

	// table1/sequential_n13 — Table I's unit of work: one sequential
	// Adaptive Search solve from a fresh random configuration (the
	// BenchmarkTableISequential counterpart, seeds k+1).
	{
		var iters, ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				m := costas.New(13, costas.Options{})
				e := adaptive.NewEngine(m, costas.TunedParams(13), uint64(k)+1)
				if !e.Solve() {
					b.Fatal("unsolved")
				}
				iters += e.Stats().Iterations
				ops++
			}
		})
		add("table1/sequential_n13", false, float64(iters)/float64(ops), r)
	}

	// table3/multiwalk_virtual32_n13 — Table III's unit: one 32-core
	// virtual multi-walk solve on the lockstep cluster.
	{
		factory := func() csp.Model { return costas.New(13, costas.Options{}) }
		var iters, ops int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				res := walk.Virtual(context.Background(), factory, walk.Config{
					Walkers:    32,
					Factory:    adaptive.Factory(costas.TunedParams(13)),
					MasterSeed: uint64(k)*7919 + 1,
				}, 0)
				if !res.Solved {
					b.Fatal("unsolved")
				}
				iters += res.WinnerIterations
				ops++
			}
		})
		add("table3/multiwalk_virtual32_n13", false, float64(iters)/float64(ops), r)
	}

	// pool/batch8_n10_direct vs pool/batch8_n10_sharded2 — the
	// distribution layer's dispatch overhead: the same 8-job CAP batch
	// through core.SolveBatch directly and through a backend.Pool over
	// two Local members (health probes, the work-stealing queue, chunked
	// dispatch). The ns/op difference is what coordinating costs when the
	// transport is free; the wire adds on top (see the service bench).
	{
		jobs := core.BatchCAP([]int{10, 10, 10, 10, 10, 10, 10, 10}, core.Options{})
		batchOpts := func(k int) core.BatchOptions {
			return core.BatchOptions{MasterSeed: uint64(k)*104729 + 1}
		}
		run := func(b *testing.B, dispatch func(k int) (core.BatchResult, error)) {
			b.ReportAllocs()
			for k := 0; k < b.N; k++ {
				res, err := dispatch(k)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Solved != len(jobs) {
					b.Fatalf("solved %d of %d", res.Stats.Solved, len(jobs))
				}
			}
		}
		add("pool/batch8_n10_direct", false, 0, testing.Benchmark(func(b *testing.B) {
			run(b, func(k int) (core.BatchResult, error) {
				return core.SolveBatch(context.Background(), jobs, batchOpts(k))
			})
		}))
		pool, err := backend.NewPool([]backend.Backend{backend.NewLocal(), backend.NewLocal()}, backend.PoolConfig{ChunkSize: 2})
		if err != nil {
			return out, err
		}
		add("pool/batch8_n10_sharded2", false, 0, testing.Benchmark(func(b *testing.B) {
			run(b, func(k int) (core.BatchResult, error) {
				return pool.SolveBatch(context.Background(), jobs, batchOpts(k))
			})
		}))
	}

	return out, failed
}

// suiteOf buckets a row name into the suite that produces it, for
// carry-over of skipped suites.
func suiteOf(name string) string {
	switch {
	case strings.HasPrefix(name, "serving/"):
		return "serving"
	case strings.HasPrefix(name, "racing/"):
		return "racing"
	default:
		return "kernel"
	}
}

// carryOver appends baseline rows belonging to a suite this run skipped.
func carryOver(results []Result, base *File, ran map[string]bool) []Result {
	for _, b := range base.Benchmarks {
		if !ran[suiteOf(b.Name)] {
			results = append(results, b)
		}
	}
	return results
}

// mergeBaseline fills BaselineNsOp/Speedup from a previously recorded file.
func mergeBaseline(results []Result, baseline *File) {
	prev := map[string]Result{}
	for _, b := range baseline.Benchmarks {
		prev[b.Name] = b
	}
	for i := range results {
		if p, ok := prev[results[i].Name]; ok && p.NsOp > 0 && results[i].NsOp > 0 {
			results[i].BaselineNsOp = p.NsOp
			results[i].Speedup = p.NsOp / results[i].NsOp
		}
	}
}

func main() {
	var (
		smoke      = flag.Bool("smoke", false, "CI mode: short runs + fail on steady-state allocs/op > 0, a >maxregress slowdown vs baseline, or a serving hit gain below -minhitgain; writes no file unless -out is given")
		maxregress = flag.Float64("maxregress", 0.10, "with -smoke: allowed fractional steady-state slowdown vs the baseline file (0.10 = 10%)")
		benchtime  = flag.String("benchtime", "", `testing benchtime (default "2s", or "0.3s" with -smoke)`)
		kernel     = flag.Bool("kernel", false, "run only the kernel/engine/table/pool suite")
		serving    = flag.Bool("serving", false, "run only the serving (HTTP fast path) suite")
		racing     = flag.Bool("racing", false, "run only the racing-portfolio suite (time-to-first-solution, racing vs static arms)")
		rebaseline = flag.Bool("rebaseline", false, "reset every recorded row's baseline to THIS run (baseline_ns_op = ns_op, speedup = 1); refused with -smoke")
		servtime   = flag.Duration("servingtime", 0, `per-row serving load window (default 3s, or 500ms with -smoke)`)
		clients    = flag.Int("clients", 0, "serving suite closed-loop clients (default GOMAXPROCS)")
		minhitgain = flag.Float64("minhitgain", 2.0, "with -smoke: required ratio of solve-path p50 to cached-hit p50 (machine-independent serving gate)")
		out        = flag.String("out", "BENCH_costas.json", "output file (\"-\" for stdout)")
		baseline   = flag.String("baseline", "BENCH_costas.json", "recorded baseline to compare against (skipped if missing)")
	)
	flag.Parse()
	// No suite flag = the full recording run does all suites.
	all := !*kernel && !*serving && !*racing
	doKernel, doServing, doRacing := *kernel || all, *serving || all, *racing || all
	if *rebaseline && *smoke {
		// Smoke numbers come from short runs; recording them as the
		// baseline would poison every later -maxregress comparison.
		fmt.Fprintln(os.Stderr, "perfbench: -rebaseline is refused with -smoke: a baseline must come from a full-length recording run")
		os.Exit(2)
	}
	testing.Init()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	bt := *benchtime
	if bt == "" {
		if *smoke {
			// Time-based, not a fixed iteration count: ns/op from a
			// 0.3s run is steady-state and comparable to the 2s
			// baseline, which the -maxregress speed gate requires.
			bt = "0.3s"
		} else {
			bt = "2s"
		}
	}

	var base *File
	if *baseline != "" {
		if raw, err := os.ReadFile(*baseline); err == nil {
			var f File
			if err := json.Unmarshal(raw, &f); err != nil {
				fmt.Fprintf(os.Stderr, "perfbench: bad baseline %s: %v\n", *baseline, err)
				os.Exit(2)
			}
			base = &f
		}
	}

	var results []Result
	if doKernel {
		r, err := runAll(bt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		results = append(results, r...)
	}
	if doServing {
		dur := *servtime
		if dur <= 0 {
			if *smoke {
				dur = 500 * time.Millisecond
			} else {
				dur = 3 * time.Second
			}
		}
		nclients := *clients
		if nclients <= 0 {
			nclients = runtime.GOMAXPROCS(0)
		}
		r, err := runServing(dur, nclients)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		results = append(results, r...)
	}
	if doRacing {
		r, err := runRacingSuite()
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
		results = append(results, r...)
	}
	// fileRows is what gets recorded: a single-suite run keeps the other
	// suites' committed rows (verbatim, their recorded trajectory intact)
	// so a partial regeneration never drops part of the file. Printing and
	// the smoke gates below stay on `results` — only rows actually
	// measured this run are reported or gated.
	fileRows := results
	if base != nil {
		mergeBaseline(results, base)
		fileRows = carryOver(results, base, map[string]bool{
			"kernel": doKernel, "serving": doServing, "racing": doRacing,
		})
	}
	if *rebaseline {
		// The trajectory restarts here: every row's baseline becomes this
		// run's measurement. Speedups recorded on other machines (or CPU
		// counts) are not comparable anyway — see README.
		for i := range fileRows {
			if fileRows[i].NsOp > 0 {
				fileRows[i].BaselineNsOp = fileRows[i].NsOp
				fileRows[i].Speedup = 1
			}
		}
	}

	doc := File{
		Schema:     "bench_costas/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchtime:  bt,
		Benchmarks: fileRows,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	switch {
	case *smoke && !outSet:
		// A smoke run is a gate, not a recording: never clobber the
		// committed trajectory with short-run numbers by default.
	case *out == "-":
		os.Stdout.Write(enc)
	default:
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perfbench:", err)
			os.Exit(2)
		}
	}

	failed := false
	for _, r := range results {
		line := fmt.Sprintf("%-32s %12.0f ns/op %8d allocs/op", r.Name, r.NsOp, r.AllocsOp)
		if r.ItersOp > 0 {
			line += fmt.Sprintf(" (%.0f iters/op)", r.ItersOp)
		}
		if r.QPS > 0 {
			line += fmt.Sprintf(" (p99 %.0f ns, %.0f req/s)", r.P99NsOp, r.QPS)
		}
		if r.Speedup > 0 {
			line += fmt.Sprintf("  %.2fx vs baseline", r.Speedup)
		}
		fmt.Fprintln(os.Stderr, line)
		if *smoke && r.SteadyState && r.AllocsOp > 0 {
			fmt.Fprintf(os.Stderr, "perfbench: FAIL: %s allocates %d allocs/op; the steady-state hot path must be allocation-free\n",
				r.Name, r.AllocsOp)
			failed = true
		}
		if *smoke && r.SteadyState && r.Speedup > 0 && r.Speedup < 1-*maxregress {
			fmt.Fprintf(os.Stderr, "perfbench: FAIL: %s regressed to %.0f ns/op (%.2fx of the %.0f ns/op baseline, tolerance %.0f%%)\n",
				r.Name, r.NsOp, r.Speedup, r.BaselineNsOp, 100**maxregress)
			failed = true
		}
	}
	// The serving gate is a ratio, not an absolute: shared CI runners
	// vary wildly in wall-clock speed, but the cached-replay path must
	// always beat the solve path by a wide machine-independent margin.
	if *smoke && doServing {
		var hit0, hit100 float64
		for _, r := range results {
			switch r.Name {
			case servingHit0:
				hit0 = r.NsOp
			case servingHit100:
				hit100 = r.NsOp
			}
		}
		if hit0 <= 0 || hit100 <= 0 {
			fmt.Fprintln(os.Stderr, "perfbench: FAIL: serving gate rows missing")
			failed = true
		} else if gain := hit0 / hit100; gain < *minhitgain {
			fmt.Fprintf(os.Stderr, "perfbench: FAIL: cached-hit p50 is only %.1fx faster than the solve path (want ≥ %.1fx): hit0 p50 %.0f ns vs hit100 p50 %.0f ns\n",
				gain, *minhitgain, hit0, hit100)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "perfbench: serving hit gain %.1fx (gate ≥ %.1fx)\n", gain, *minhitgain)
		}
	}
	// The racing gate compares fixed-seed lockstep iteration counts —
	// bit-reproducible on any machine, so it needs no slack for CI runner
	// speed, only the -maxregress allowance vs the best static arm.
	if *smoke && doRacing && gateRacing(results, *maxregress) {
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
