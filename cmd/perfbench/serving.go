package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/loadgen"
	"repro/internal/service"
)

// The serving suite measures the HTTP fast path end to end: a loopback
// solverd (the real service handler behind a real TCP listener, so the
// wire cost is in the numbers) driven by closed-loop clients at three
// cache-hit mixes. Row names are stable — CI gates and the committed
// trajectory key on them.
const (
	servingModel   = "costas n=14" // hard enough that a solve dwarfs the wire cost
	servingHit0    = "serving/solve_n14_hit0"
	servingHit90   = "serving/solve_n14_hit90"
	servingHit100  = "serving/solve_n14_hit100"
	servingPool    = 64 // warmed seed pool behind the hit mixes
	servingTimeout = int64(30_000)
)

// runServing benchmarks the serving fast path and returns serving/* rows:
// NsOp is the p50 request latency, P99NsOp the tail, QPS the sustained
// closed-loop throughput.
//
//	hit0   — every request a fresh explicit seed: the full solve path
//	         (cache misses that populate, never hit).
//	hit90  — 9 of 10 requests from the warmed pool: the steady mixed
//	         traffic a deployed node sees.
//	hit100 — all requests from the warmed pool: the pure replay path.
func runServing(dur time.Duration, clients int) ([]Result, error) {
	srv := service.New(service.Config{Workers: runtime.GOMAXPROCS(0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
		IdleConnTimeout:     90 * time.Second,
	}}

	poolSeed := func(i int) uint64 { return uint64(1 + i%servingPool) }
	freshBase := uint64(1_000_000)

	solve := func(seed uint64) error {
		body := fmt.Sprintf(`{"model":%q,"options":{"seed":%d},"timeout_ms":%d}`,
			servingModel, seed, servingTimeout)
		resp, err := client.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	rows := []struct {
		name string
		fn   func(seq int) error
		warm int
	}{
		{servingHit0, func(seq int) error {
			if seq < 0 { // warmup: connections only, seeds outside every mix
				return solve(freshBase*2 + uint64(-seq))
			}
			return solve(freshBase + uint64(seq))
		}, clients},
		{servingHit90, func(seq int) error {
			if seq < 0 {
				return solve(poolSeed(-seq - 1))
			}
			if seq%10 == 9 { // every tenth request misses with a fresh seed
				return solve(freshBase*3 + uint64(seq))
			}
			return solve(poolSeed(seq))
		}, servingPool},
		{servingHit100, func(seq int) error {
			if seq < 0 {
				return solve(poolSeed(-seq - 1))
			}
			return solve(poolSeed(seq))
		}, servingPool},
	}

	out := make([]Result, 0, len(rows))
	for _, row := range rows {
		st := loadgen.Run(loadgen.Config{Clients: clients, Duration: dur, Warmup: row.warm}, row.fn)
		if st.Requests == 0 {
			return out, fmt.Errorf("serving row %s recorded no requests in %v", row.name, dur)
		}
		if st.Errors > 0 {
			return out, fmt.Errorf("serving row %s: %d of %d requests failed", row.name, st.Errors, st.Requests)
		}
		fmt.Fprintf(os.Stderr, "%-32s %s\n", row.name, st)
		out = append(out, Result{
			Name:    row.name,
			NsOp:    float64(st.P50),
			P99NsOp: float64(st.P99),
			QPS:     st.QPS,
		})
	}
	return out, nil
}
