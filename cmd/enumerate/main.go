// Command enumerate exhaustively counts (or lists) the Costas arrays of a
// given order with the backtracking enumerator, optionally up to dihedral
// symmetry — reproducing the published counts quoted in §II of the paper
// (164 arrays, 23 symmetry classes at n = 29; we go as far as exhaustive
// search reasonably goes on one machine).
//
// Usage:
//
//	enumerate -n 10              # count all Costas arrays of order 10
//	enumerate -n 8 -unique       # count symmetry classes as well
//	enumerate -n 6 -list         # print every array
//	enumerate -n 13 -first       # print only the first found
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/costas"
)

func main() {
	var (
		n      = flag.Int("n", 10, "order to enumerate")
		unique = flag.Bool("unique", false, "also count dihedral symmetry classes")
		list   = flag.Bool("list", false, "print every array found")
		first  = flag.Bool("first", false, "stop after the first array")
	)
	flag.Parse()

	if *n < 1 || *n > 32 {
		fmt.Fprintln(os.Stderr, "order must be in [1, 32]")
		os.Exit(2)
	}

	start := time.Now()
	if *first {
		p := costas.First(*n)
		if p == nil {
			fmt.Printf("no Costas array of order %d found\n", *n)
			os.Exit(1)
		}
		fmt.Println(p)
		fmt.Printf("found in %v\n", time.Since(start))
		return
	}

	count := 0
	costas.Enumerate(*n, func(p []int) bool {
		count++
		if *list {
			fmt.Println(p)
		}
		return true
	})
	fmt.Printf("order %d: %d Costas arrays", *n, count)
	if want, ok := costas.KnownCounts[*n]; ok {
		status := "MATCHES published count"
		if want != count {
			status = fmt.Sprintf("MISMATCH: published count is %d", want)
		}
		fmt.Printf(" (%s)", status)
	}
	fmt.Printf(" [%v]\n", time.Since(start))

	if *unique {
		uStart := time.Now()
		u := costas.CountUnique(*n)
		fmt.Printf("order %d: %d symmetry classes", *n, u)
		if want, ok := costas.KnownUniqueCounts[*n]; ok {
			status := "MATCHES published count"
			if want != u {
				status = fmt.Sprintf("MISMATCH: published count is %d", want)
			}
			fmt.Printf(" (%s)", status)
		}
		fmt.Printf(" [%v]\n", time.Since(uStart))
	}
	if density, ok := costas.SolutionDensity(*n); ok {
		fmt.Printf("solution density: %.3g of %d! permutations\n", density, *n)
	}
}
