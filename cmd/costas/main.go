// Command costas solves one Costas Array Problem instance with any of the
// library's search methods, sequentially or by independent multi-walk.
//
// Usage:
//
//	costas -n 18                          # sequential Adaptive Search solve
//	costas -n 20 -walkers 8               # 8 concurrent walkers
//	costas -n 20 -walkers 256 -virtual    # simulate a 256-core cluster
//	costas -n 14 -method dialectic        # a baseline method instead of AS
//	costas -n 14 -method tabu -walkers 4  # baselines run parallel too
//	costas -n 16 -method portfolio -walkers 8   # mix all methods in one run
//	costas -n 17 -grid -triangle          # pretty-print the solution
//	costas -n 16 -construct               # algebraic construction instead of search
//	costas -n 12 -method cp               # complete CP search (no multi-walk)
//	costas -batch 12,13,14                # solve a batch of orders concurrently
//	costas -batch 14,15 -count 10 -reuse  # 10 solves per order, pooled engines
//	costas -model "nqueens n=64"          # any registered model via the registry
//	costas -model "magicsquare k=5 method=tabu walkers=4"
//	costas -models                        # list the model catalogue
//	costas -n 18 -addr localhost:8080     # submit to a solverd node or cluster
//	costas -batch 14,15 -addr host:8080   # remote batch (sharded by a coordinator)
//	costas -campaign "costas n=24" -hours 48 -addr host:8080   # durable fleet search
//	costas -campaign "costas n=24" -hours 48 -data ./camp      # same, in-process
//	                                      # (re-running resumes from the last checkpoint)
//	costas -n 20 -cpuprofile cpu.pb.gz    # profile the solve (go tool pprof)
//	costas -n 20 -memprofile mem.pb.gz    # heap profile written on exit
//
// The exit status is 0 on success and 1 if the instance (or any batch
// job) was not solved within the given budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costas"
	"repro/internal/cp"
	"repro/internal/csp"
	"repro/internal/registry"
)

func main() {
	var (
		n         = flag.Int("n", 18, "Costas array order")
		method    = flag.String("method", "adaptive", "search method: "+strings.Join(core.Methods(), ", ")+", or cp (complete search)")
		solver    = flag.String("solver", "", "deprecated alias of -method")
		portfolio = flag.String("portfolio", "", "comma-separated method mix for -method portfolio (default all four)")
		walkers   = flag.Int("walkers", 1, "number of independent walkers")
		virtual   = flag.Bool("virtual", false, "lockstep virtual cluster instead of goroutines")
		seed      = flag.Uint64("seed", 1, "master seed (reproducible runs)")
		maxIter   = flag.Int64("maxiter", 0, "per-walker iteration budget (0 = unlimited)")
		grid      = flag.Bool("grid", false, "print the n×n grid")
		triangle  = flag.Bool("triangle", false, "print the difference triangle")
		quiet     = flag.Bool("q", false, "print only the array")
		construct = flag.Bool("construct", false, "use a Welch/Golomb construction instead of search")
		platform  = flag.String("platform", "", "also report virtual seconds on a paper platform (ha8000, suno, helios, jugene, t7500)")
		batch     = flag.String("batch", "", "comma-separated orders to solve as one concurrent batch (overrides -n)")
		count     = flag.Int("count", 1, "solves per batch order (batch mode only)")
		jobs      = flag.Int("jobs", 0, "concurrent batch jobs (0 = GOMAXPROCS)")
		reuse     = flag.Bool("reuse", false, "pool engines across compatible batch jobs (hot path)")
		model     = flag.String("model", "", `registry run spec, e.g. "nqueens n=64 method=tabu" (overrides -n)`)
		addr      = flag.String("addr", "", "submit to a remote solverd node or coordinator at this address instead of solving in-process")
		models    = flag.Bool("models", false, "list the registered models and exit")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		campSpec  = flag.String("campaign", "", `run a durable checkpointed campaign on this run spec, e.g. "costas n=24" (pairs with -hours, -shards, -snapshot; remote via -addr, else in-process under -data)`)
		hours     = flag.Float64("hours", 0, "campaign wall-clock budget in hours (0 = until solved or cancelled)")
		shards    = flag.Int("shards", 0, "campaign shards — independently assignable walk groups (0 = default)")
		snapshot  = flag.Int64("snapshot", 0, "campaign checkpoint cadence in per-walker iterations (0 = default)")
		dataDir   = flag.String("data", "./campaigns", "campaign data directory for in-process campaigns (ignored with -addr)")
	)
	flag.Parse()
	startProfiles(*cpuprof, *memprof)
	defer stopProfiles()

	if *models {
		for _, e := range registry.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Description)
			for _, p := range e.Params {
				fmt.Printf("             %s: %s (default %d, min %d)\n", p.Name, p.Description, p.Default, p.Min)
			}
		}
		fmt.Printf("spec option keys: %s\n", strings.Join(core.OptionKeys(), ", "))
		return
	}

	methodSet, solverSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "method":
			methodSet = true
		case "solver":
			solverSet = true
		}
	})
	if solverSet {
		if methodSet {
			fmt.Fprintf(os.Stderr, "-solver is a deprecated alias of -method; pass only one\n")
			exit(2)
		}
		if *solver == "as" {
			*solver = "adaptive"
		}
		*method = *solver
	}
	if *portfolio != "" && *method != "portfolio" {
		if methodSet || solverSet {
			fmt.Fprintf(os.Stderr, "-portfolio conflicts with -method %s (use -method portfolio)\n", *method)
			exit(2)
		}
		*method = "portfolio" // -portfolio alone implies portfolio mode
	}

	if *campSpec != "" {
		if *batch != "" || *model != "" || *construct || *method == "cp" {
			fmt.Fprintln(os.Stderr, "-campaign is a standalone mode; -batch, -model, -construct and -method cp do not apply")
			exit(2)
		}
		runCampaign(campaignParams{
			spec:     *campSpec,
			hours:    *hours,
			shards:   *shards,
			walkers:  *walkers,
			snapshot: *snapshot,
			seed:     *seed,
			addr:     *addr,
			dataDir:  *dataDir,
			quiet:    *quiet,
		})
		return
	}

	// -addr swaps the execution backend: every solve (single, -model,
	// -batch) is submitted over HTTP instead of running in-process.
	var remote core.Backend
	if *addr != "" {
		if *construct || *method == "cp" {
			fmt.Fprintln(os.Stderr, "-addr submits to the multi-walk service; -construct and -method cp are local-only modes")
			exit(2)
		}
		remote = backend.NewRemote(*addr, backend.RemoteConfig{})
	}

	if *construct {
		if *batch != "" {
			fmt.Fprintln(os.Stderr, "-batch is a search mode; -construct does not support it")
			exit(2)
		}
		if *model != "" {
			fmt.Fprintln(os.Stderr, "-model is a search mode; -construct does not support it")
			exit(2)
		}
		arr := core.Construct(*n)
		if arr == nil {
			fmt.Fprintf(os.Stderr, "no classical construction covers order %d (that is why the paper searches)\n", *n)
			exit(1)
		}
		emit(arr, *grid, *triangle, *quiet)
		return
	}

	if *method == "cp" {
		if *batch != "" {
			fmt.Fprintln(os.Stderr, "-batch is a multi-walk mode; -method cp does not support it")
			exit(2)
		}
		if *model != "" {
			fmt.Fprintln(os.Stderr, "-model is a multi-walk mode; -method cp does not support it")
			exit(2)
		}
		runCP(*n, *maxIter, *grid, *triangle, *quiet)
		return
	}

	if *model != "" {
		if *batch != "" || *grid || *triangle || *platform != "" {
			fmt.Fprintln(os.Stderr, "-model is a generic single-solve mode; -batch, -grid, -triangle and -platform do not apply")
			exit(2)
		}
		runModel(*model, core.Options{
			Method:        *method,
			Walkers:       *walkers,
			Virtual:       *virtual,
			Seed:          *seed,
			MaxIterations: *maxIter,
			Backend:       remote,
		}, *portfolio, *quiet)
		return
	}

	if *batch != "" {
		if *grid || *triangle || *platform != "" {
			fmt.Fprintln(os.Stderr, "-grid, -triangle and -platform are single-instance reports; -batch does not support them")
			exit(2)
		}
		runBatch(*batch, *count, *jobs, *reuse, batchTemplate{
			method:    *method,
			portfolio: *portfolio,
			walkers:   *walkers,
			virtual:   *virtual,
			seed:      *seed,
			maxIter:   *maxIter,
			quiet:     *quiet,
			backend:   remote,
		})
		return
	}

	opts := core.Options{
		N:             *n,
		Method:        *method,
		Walkers:       *walkers,
		Virtual:       *virtual,
		Seed:          *seed,
		MaxIterations: *maxIter,
		Backend:       remote,
	}
	if *portfolio != "" {
		opts.Portfolio = strings.Split(*portfolio, ",")
	}
	res, err := core.Solve(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if !res.Solved {
		fmt.Fprintf(os.Stderr, "unsolved within budget (total %d iterations over %d walkers)\n",
			res.TotalIterations, len(res.Stats))
		exit(1)
	}
	emit(res.Array, *grid, *triangle, *quiet)
	if !*quiet {
		fmt.Printf("method=%s walkers=%d winner=%d iterations=%d total_iterations=%d wall=%v\n",
			*method, len(res.Stats), res.Winner, res.Iterations, res.TotalIterations, res.WallTime)
		fmt.Printf("winner stats: %s\n", statsLine(res.Stats[res.Winner]))
		if *platform != "" {
			p, ok := cluster.Platforms[*platform]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
				exit(2)
			}
			fmt.Printf("virtual time on %s: %.3f s\n", p.Name, p.Seconds(res.Iterations))
		}
	}
}

// runModel solves one registry run spec (-model) with the CLI's flag
// values as base options; spec keys override flags. Generic models print
// the raw 0-based permutation — 1-based output is a Costas-paper idiom.
func runModel(spec string, base core.Options, portfolio string, quiet bool) {
	if portfolio != "" {
		base.Portfolio = strings.Split(portfolio, ",")
	}
	inst, opts, err := core.ParseRunSpec(spec, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	res, err := core.SolveInstance(context.Background(), inst, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if !res.Solved {
		fmt.Fprintf(os.Stderr, "%s: unsolved within budget (total %d iterations over %d walkers)\n",
			inst.Spec, res.TotalIterations, len(res.Stats))
		exit(1)
	}
	fmt.Println(res.Array)
	if !quiet {
		fmt.Printf("model=%s walkers=%d winner=%d iterations=%d total_iterations=%d wall=%v\n",
			inst.Spec, len(res.Stats), res.Winner, res.Iterations, res.TotalIterations, res.WallTime)
		fmt.Printf("winner stats: %s\n", statsLine(res.Stats[res.Winner]))
	}
}

// batchTemplate carries the per-job options shared by every job of a
// -batch run.
type batchTemplate struct {
	method    string
	portfolio string
	walkers   int
	virtual   bool
	seed      uint64
	maxIter   int64
	quiet     bool
	backend   core.Backend // non-nil submits the batch to a remote cluster (-addr)
}

// runBatch solves `-batch n1,n2,...` × `-count` concurrently through
// core.SolveBatch and prints one line per job plus the aggregate. The
// master seed is -seed; per-job seeds are derived from it, so a virtual
// batch is reproducible run for run.
func runBatch(orders string, count, jobs int, reuse bool, tmpl batchTemplate) {
	var ns []int
	for _, field := range strings.Split(orders, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -batch order %q: %v\n", field, err)
			exit(2)
		}
		ns = append(ns, n)
	}
	if count < 1 {
		count = 1
	}
	opts := core.Options{
		Method:        tmpl.method,
		Walkers:       tmpl.walkers,
		Virtual:       tmpl.virtual,
		MaxIterations: tmpl.maxIter,
	}
	if tmpl.portfolio != "" {
		opts.Portfolio = strings.Split(tmpl.portfolio, ",")
	}
	repeated := make([]int, 0, len(ns)*count)
	for _, n := range ns {
		for k := 0; k < count; k++ {
			repeated = append(repeated, n)
		}
	}
	res, err := core.SolveBatch(context.Background(), core.BatchCAP(repeated, opts), core.BatchOptions{
		Concurrency:  jobs,
		MasterSeed:   tmpl.seed,
		ReuseEngines: reuse,
		Backend:      tmpl.backend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}

	failed := false
	for i, jr := range res.Jobs {
		n := repeated[i]
		switch {
		case jr.Err != nil:
			failed = true
			fmt.Fprintf(os.Stderr, "job %d (n=%d): %v\n", i, n, jr.Err)
		case !jr.Result.Solved:
			failed = true
			fmt.Fprintf(os.Stderr, "job %d (n=%d): unsolved within budget (%d iterations)\n",
				i, n, jr.Result.TotalIterations)
		case tmpl.quiet:
			emit(jr.Result.Array, false, false, true)
		default:
			fmt.Printf("job %d: n=%d solved iterations=%d total_iterations=%d reused=%v wall=%v\n",
				i, n, jr.Result.Iterations, jr.Result.TotalIterations, jr.Reused, jr.Result.WallTime)
		}
	}
	if !tmpl.quiet {
		st := res.Stats
		fmt.Printf("batch: jobs=%d solved=%d errors=%d reused=%d total_iterations=%d wall=%v throughput=%.1f solves/s\n",
			st.Jobs, st.Solved, st.Errors, st.EnginesReused, st.TotalIterations, st.WallTime, st.SolvesPerSec)
	}
	if failed {
		exit(1)
	}
}

// statsLine renders the counters a method actually filled (each method
// uses a different subset of the unified csp.Stats block).
func statsLine(s csp.Stats) string {
	fields := []struct {
		name  string
		value int64
	}{
		{"local_minima", s.LocalMinima}, {"resets", s.Resets}, {"restarts", s.Restarts},
		{"swaps", s.Swaps}, {"plateau", s.PlateauMoves}, {"uphill", s.UphillMoves},
		{"moves", s.Moves}, {"aspirations", s.Aspirations}, {"rounds", s.Rounds},
		{"descents", s.Descents}, {"evaluations", s.Evaluations},
	}
	parts := []string{}
	for _, f := range fields {
		if f.value != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.name, f.value))
		}
	}
	if len(parts) == 0 {
		return "(no events)"
	}
	return strings.Join(parts, " ")
}

// runCP solves with the complete CP solver (§IV-C) — deterministic tree
// search, so it sits outside the multi-walk machinery.
func runCP(n int, maxIter int64, grid, triangle, quiet bool) {
	s, err := cp.New(n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	s.SetNodeBudget(maxIter)
	start := time.Now()
	sol, err := s.FirstSolution()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	if sol == nil || !costas.IsCostas(sol) {
		fmt.Fprintln(os.Stderr, "cp: unsolved within budget")
		exit(1)
	}
	emit(sol, grid, triangle, quiet)
	if !quiet {
		st := s.Stats()
		fmt.Printf("method=cp wall=%v nodes=%d backtracks=%d\n", time.Since(start), st.Nodes, st.Backtracks)
	}
}

func emit(arr []int, grid, triangle, quiet bool) {
	one := make([]int, len(arr))
	for i, v := range arr {
		one[i] = v + 1 // print 1-based like the paper's [3,4,2,1,5] example
	}
	fmt.Println(one)
	if quiet {
		return
	}
	if grid {
		fmt.Print(costas.Grid(arr))
	}
	if triangle {
		for d, row := range costas.Triangle(arr) {
			fmt.Printf("d=%d: %v\n", d+1, row)
		}
	}
}
