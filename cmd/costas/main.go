// Command costas solves one Costas Array Problem instance with the
// Adaptive Search solver, sequentially or by independent multi-walk.
//
// Usage:
//
//	costas -n 18                          # sequential solve
//	costas -n 20 -walkers 8               # 8 concurrent walkers
//	costas -n 20 -walkers 256 -virtual    # simulate a 256-core cluster
//	costas -n 17 -grid -triangle          # pretty-print the solution
//	costas -n 16 -construct               # algebraic construction instead of search
//	costas -n 14 -solver dialectic        # run a baseline solver instead of AS
//
// The exit status is 0 on success and 1 if the instance was not solved
// within the given budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costas"
	"repro/internal/cp"
	"repro/internal/dialectic"
	"repro/internal/hillclimb"
	"repro/internal/tabu"
)

func main() {
	var (
		n         = flag.Int("n", 18, "Costas array order")
		walkers   = flag.Int("walkers", 1, "number of independent walkers")
		virtual   = flag.Bool("virtual", false, "lockstep virtual cluster instead of goroutines")
		seed      = flag.Uint64("seed", 1, "master seed (reproducible runs)")
		maxIter   = flag.Int64("maxiter", 0, "per-walker iteration budget (0 = unlimited)")
		grid      = flag.Bool("grid", false, "print the n×n grid")
		triangle  = flag.Bool("triangle", false, "print the difference triangle")
		quiet     = flag.Bool("q", false, "print only the array")
		construct = flag.Bool("construct", false, "use a Welch/Golomb construction instead of search")
		platform  = flag.String("platform", "", "also report virtual seconds on a paper platform (ha8000, suno, helios, jugene, t7500)")
		solver    = flag.String("solver", "as", "solver: as (adaptive search), dialectic, tabu, hillclimb, cp")
	)
	flag.Parse()

	if *solver != "as" {
		runBaseline(*solver, *n, *seed, *maxIter, *grid, *triangle, *quiet)
		return
	}

	if *construct {
		arr := core.Construct(*n)
		if arr == nil {
			fmt.Fprintf(os.Stderr, "no classical construction covers order %d (that is why the paper searches)\n", *n)
			os.Exit(1)
		}
		emit(arr, *grid, *triangle, *quiet)
		return
	}

	res, err := core.Solve(context.Background(), core.Options{
		N:             *n,
		Walkers:       *walkers,
		Virtual:       *virtual,
		Seed:          *seed,
		MaxIterations: *maxIter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !res.Solved {
		fmt.Fprintf(os.Stderr, "unsolved within budget (total %d iterations over %d walkers)\n",
			res.TotalIterations, len(res.Stats))
		os.Exit(1)
	}
	emit(res.Array, *grid, *triangle, *quiet)
	if !*quiet {
		fmt.Printf("walkers=%d winner=%d iterations=%d total_iterations=%d wall=%v\n",
			len(res.Stats), res.Winner, res.Iterations, res.TotalIterations, res.WallTime)
		s := res.Stats[res.Winner]
		fmt.Printf("winner stats: local_minima=%d resets=%d restarts=%d swaps=%d plateau=%d uphill=%d\n",
			s.LocalMinima, s.Resets, s.Restarts, s.Swaps, s.PlateauMoves, s.UphillMoves)
		if *platform != "" {
			p, ok := cluster.Platforms[*platform]
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
				os.Exit(2)
			}
			fmt.Printf("virtual time on %s: %.3f s\n", p.Name, p.Seconds(res.Iterations))
		}
	}
}

// runBaseline solves with one of the comparison solvers (Table II, §IV-C)
// and reports its native work counters.
func runBaseline(name string, n int, seed uint64, maxIter int64, grid, triangle, quiet bool) {
	var (
		arr   []int
		ok    bool
		extra string
	)
	start := time.Now()
	switch name {
	case "dialectic":
		s := dialectic.New(costas.New(n, costas.Options{}), dialectic.Params{MaxEvaluations: maxIter}, seed)
		ok = s.Solve()
		arr = s.Solution()
		st := s.Stats()
		extra = fmt.Sprintf("evaluations=%d rounds=%d descents=%d restarts=%d",
			st.Evaluations, st.Rounds, st.Descents, st.Restarts)
	case "tabu":
		s := tabu.New(costas.New(n, costas.Options{}), tabu.Params{MaxIterations: maxIter}, seed)
		ok = s.Solve()
		arr = s.Solution()
		st := s.Stats()
		extra = fmt.Sprintf("iterations=%d evaluations=%d aspirations=%d restarts=%d",
			st.Iterations, st.Evaluations, st.Aspirations, st.Restarts)
	case "hillclimb":
		s := hillclimb.New(costas.New(n, costas.Options{}), hillclimb.Params{MaxIterations: maxIter}, seed)
		ok = s.Solve()
		arr = s.Solution()
		st := s.Stats()
		extra = fmt.Sprintf("iterations=%d moves=%d restarts=%d", st.Iterations, st.Moves, st.Restarts)
	case "cp":
		s, err := cp.New(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		s.SetNodeBudget(maxIter)
		sol, err := s.FirstSolution()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok = sol != nil
		arr = sol
		st := s.Stats()
		extra = fmt.Sprintf("nodes=%d backtracks=%d", st.Nodes, st.Backtracks)
	default:
		fmt.Fprintf(os.Stderr, "unknown solver %q (want as, dialectic, tabu, hillclimb, cp)\n", name)
		os.Exit(2)
	}
	if !ok || !costas.IsCostas(arr) {
		fmt.Fprintf(os.Stderr, "%s: unsolved within budget\n", name)
		os.Exit(1)
	}
	emit(arr, grid, triangle, quiet)
	if !quiet {
		fmt.Printf("solver=%s wall=%v %s\n", name, time.Since(start), extra)
	}
}

func emit(arr []int, grid, triangle, quiet bool) {
	one := make([]int, len(arr))
	for i, v := range arr {
		one[i] = v + 1 // print 1-based like the paper's [3,4,2,1,5] example
	}
	fmt.Println(one)
	if quiet {
		return
	}
	if grid {
		fmt.Print(costas.Grid(arr))
	}
	if triangle {
		for d, row := range costas.Triangle(arr) {
			fmt.Printf("d=%d: %v\n", d+1, row)
		}
	}
}
