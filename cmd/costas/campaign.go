package main

// Campaign front end (-campaign): durable, checkpointable searches that
// survive process restarts — the paper's 48-hour cluster attacks on hard
// Costas orders as a CLI mode. With -addr the campaign is created on a
// remote coordinator (solverd -data) and this process only polls status;
// without it a complete in-process campaign system (store + coordinator
// + worker) runs under -data, and re-running the same command resumes
// the existing campaign from its last checkpoints.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
)

type campaignParams struct {
	spec     string
	hours    float64
	shards   int
	walkers  int
	snapshot int64
	seed     uint64
	addr     string
	dataDir  string
	quiet    bool
}

func runCampaign(p campaignParams) {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if p.addr != "" {
		runRemoteCampaign(ctx, p)
		return
	}
	runLocalCampaign(ctx, p)
}

// finish prints the terminal state and exits.
func finish(st campaign.Status, quiet bool) {
	switch st.State {
	case campaign.StateSolved:
		sol := st.Solution
		if strings.HasPrefix(strings.TrimSpace(st.Spec.RunSpec), "costas") {
			emit(sol.Config, false, false, quiet)
		} else {
			fmt.Println(sol.Config)
		}
		if !quiet {
			fmt.Printf("campaign %s solved: shard=%d walker=%d epoch=%d shard_iterations=%d total_iterations=%d\n",
				st.Spec.ID, sol.Shard, sol.Walker, sol.Epoch, sol.Iterations, st.Iterations)
		}
		exit(0)
	case campaign.StateCancelled:
		fmt.Fprintf(os.Stderr, "campaign %s cancelled (%s) after %d iterations; best cost %d\n",
			st.Spec.ID, st.Reason, st.Iterations, st.BestCost)
		exit(1)
	default:
		fmt.Fprintf(os.Stderr, "campaign %s in unexpected state %q\n", st.Spec.ID, st.State)
		exit(1)
	}
}

func progressLine(st campaign.Status) string {
	return fmt.Sprintf("campaign %s: %s iterations=%d best_cost=%d checkpoints=%d workers=%d",
		st.Spec.ID, st.State, st.Iterations, st.BestCost, st.Checkpoints, st.Workers)
}

// --- in-process mode ---

func runLocalCampaign(ctx context.Context, p campaignParams) {
	store, err := campaign.Open(p.dataDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	defer store.Close()
	coord, err := campaign.NewCoordinator(campaign.CoordinatorConfig{Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}

	// Resume over create: a running campaign on the same run spec in this
	// data dir IS this search — picking it up from its checkpoints is the
	// whole point of the durable layer.
	var spec campaign.Spec
	resumed := false
	for _, st := range coord.List() {
		if st.State == campaign.StateRunning && st.Spec.RunSpec == p.spec {
			spec = st.Spec
			resumed = true
			break
		}
	}
	if !resumed {
		spec = campaign.Spec{
			RunSpec:       p.spec,
			Shards:        p.shards,
			Walkers:       p.walkers,
			SnapshotIters: p.snapshot,
			MasterSeed:    p.seed,
		}
		if p.hours > 0 {
			spec.Deadline = time.Now().Add(time.Duration(p.hours * float64(time.Hour))).UTC()
		}
		spec, err = coord.Create(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit(2)
		}
	}
	if !p.quiet {
		verb := "created"
		if resumed {
			verb = "resumed"
		}
		fmt.Printf("campaign %s %s: %s shards=%d walkers=%d snapshot=%d data=%s\n",
			spec.ID, verb, spec.RunSpec, spec.Shards, spec.Walkers, spec.SnapshotIters, p.dataDir)
	}

	worker, err := campaign.NewWorker(campaign.WorkerConfig{
		Control:   coord,
		Capacity:  spec.Shards,
		Heartbeat: 500 * time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	wctx, stopWorker := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = worker.Run(wctx) }()

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			// Ctrl-C: stop cleanly; the campaign stays running in the log
			// and the next invocation resumes it.
			stopWorker()
			<-workerDone
			if !p.quiet {
				fmt.Printf("campaign %s interrupted — state saved under %s; re-run to resume\n", spec.ID, p.dataDir)
			}
			exit(1)
		case <-ticker.C:
			st, ok := coord.Status(spec.ID)
			if !ok {
				continue
			}
			if st.State != campaign.StateRunning {
				stopWorker()
				<-workerDone
				finish(st, p.quiet)
			}
			if !p.quiet {
				fmt.Println(progressLine(st))
			}
		}
	}
}

// --- remote mode ---

func runRemoteCampaign(ctx context.Context, p campaignParams) {
	base := p.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	body, _ := json.Marshal(map[string]any{
		"spec":           p.spec,
		"shards":         p.shards,
		"walkers":        p.walkers,
		"snapshot_iters": p.snapshot,
		"seed":           p.seed,
		"hours":          p.hours,
	})
	var spec campaign.Spec
	if err := postJSON(ctx, base+"/v1/campaigns", body, &spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(2)
	}
	if !p.quiet {
		fmt.Printf("campaign %s created on %s: %s shards=%d walkers=%d snapshot=%d\n",
			spec.ID, p.addr, spec.RunSpec, spec.Shards, spec.Walkers, spec.SnapshotIters)
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Printf("campaign %s keeps running on %s — poll GET /v1/campaigns/%s\n", spec.ID, p.addr, spec.ID)
			exit(1)
		case <-ticker.C:
			var st campaign.Status
			if err := getJSON(ctx, base+"/v1/campaigns/"+spec.ID, &st); err != nil {
				// Transient coordinator outage: the campaign survives it;
				// so does the poll loop.
				if !p.quiet {
					fmt.Fprintf(os.Stderr, "status poll: %v\n", err)
				}
				continue
			}
			if st.State != campaign.StateRunning {
				finish(st, p.quiet)
			}
			if !p.quiet {
				fmt.Println(progressLine(st))
			}
		}
	}
}

func postJSON(ctx context.Context, url string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, out)
}

func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, out)
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return fmt.Errorf("%s: HTTP %d: %s", req.URL.Path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
