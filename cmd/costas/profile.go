package main

// CPU/heap profiling hooks (-cpuprofile / -memprofile): perf work on the
// solver should never require code edits to measure. The stop path is
// guarded by a sync.Once because the CLI exits through both normal main
// return (deferred stop) and explicit exit() on error paths.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

var (
	profMu      sync.Once
	memProfPath string
)

// startProfiles begins CPU profiling and/or arms the heap-profile dump.
// Errors are fatal: a requested-but-broken profile is worse than no run.
func startProfiles(cpuPath, memPath string) {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costas: -cpuprofile:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "costas: -cpuprofile:", err)
			os.Exit(2)
		}
	}
	memProfPath = memPath
}

// stopProfiles flushes the CPU profile and writes the heap profile; safe to
// call more than once.
func stopProfiles() {
	profMu.Do(func() {
		pprof.StopCPUProfile()
		if memProfPath == "" {
			return
		}
		f, err := os.Create(memProfPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "costas: -memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialise the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "costas: -memprofile:", err)
		}
	})
}

// exit flushes any active profiles before terminating: os.Exit skips
// deferred calls, so every explicit exit in this command routes here.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}
