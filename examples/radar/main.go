// Radar demonstrates the application that motivated Costas arrays in the
// 1960s and keeps them relevant to radar and software-defined radio (§I,
// §II of the paper): frequency-hopping waveforms with thumbtack ambiguity.
//
// A pulse train hops over n frequencies following a permutation. Echo
// processing correlates the transmitted pattern against time-shifted
// (delay) and frequency-shifted (Doppler) copies; the discrete ambiguity
// value at shift (dt, df) is the number of pulse/frequency coincidences.
// For a Costas permutation every off-origin value is ≤ 1 — the ideal
// "thumbtack" — so a target's delay/Doppler is unambiguous. A non-Costas
// hop pattern has higher sidelobes: ghost targets.
//
// The example solves a CAP instance with the library, analyses its
// ambiguity surface next to a deliberately bad (chirp) pattern, and
// finishes with a two-user scenario: cross-interference between a searched
// array and an algebraically constructed one.
//
// Run with:
//
//	go run ./examples/radar
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/radar"
)

func main() {
	const n = 12

	res, err := core.Solve(context.Background(), core.Options{N: n, Seed: 99})
	if err != nil || !res.Solved {
		log.Fatalf("solve failed: %v", err)
	}
	costasWf, err := radar.NewWaveform(res.Array)
	if err != nil {
		log.Fatal(err)
	}

	chirp := make([]int, n) // worst possible hop pattern: a linear sweep
	for i := range chirp {
		chirp[i] = i
	}
	chirpWf, _ := radar.NewWaveform(chirp)

	fmt.Printf("Costas hop pattern (order %d): %v\n", n, costasWf.Hops)
	ambC := radar.ComputeAmbiguity(costasWf)
	fmt.Printf("ambiguity around the origin (center value = %d pulses):\n", ambC.Peak())
	fmt.Print(ambC.Render(6))
	fmt.Printf("max off-origin sidelobe: %d — thumbtack: %v\n", ambC.MaxSidelobe(), ambC.IsThumbtack())
	hist := ambC.SidelobeHistogram()
	fmt.Printf("ghost-response histogram: %d cells at height 1, none higher\n\n", hist[1])

	fmt.Printf("chirp hop pattern: %v\n", chirpWf.Hops)
	ambL := radar.ComputeAmbiguity(chirpWf)
	fmt.Print(ambL.Render(6))
	fmt.Printf("max off-origin sidelobe: %d — a shifted chirp re-aligns almost entirely: ghost targets\n\n",
		ambL.MaxSidelobe())

	// Two-user scenario: our searched array vs an algebraic one.
	if other := core.Construct(n); other != nil {
		otherWf, _ := radar.NewWaveform(other)
		x, err := radar.CrossCoincidence(costasWf, otherWf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("two-user band sharing: searched vs Welch/Golomb array,\n")
		fmt.Printf("worst cross-coincidence %d of %d pulses (lower = less mutual interference)\n", x, n)
	}
}
