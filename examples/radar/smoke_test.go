package main

// Smoke test: keeps this example package inside the tier-1 `go test
// ./...` net by running a miniature of the ambiguity analysis main
// demonstrates.

import (
	"testing"

	"repro/internal/costas"
	"repro/internal/radar"
)

func TestAmbiguityFlow(t *testing.T) {
	arr := costas.ConstructAny(10)
	if arr == nil {
		t.Fatal("no construction for order 10")
	}
	wf, err := radar.NewWaveform(arr)
	if err != nil {
		t.Fatal(err)
	}
	amb := radar.ComputeAmbiguity(wf)
	if !amb.IsThumbtack() {
		t.Fatalf("constructed Costas array is not a thumbtack: %v", arr)
	}

	chirp := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	chirpWf, _ := radar.NewWaveform(chirp)
	if radar.ComputeAmbiguity(chirpWf).IsThumbtack() {
		t.Fatal("chirp pattern classified as thumbtack")
	}
}
