package main

// Smoke test: keeps this example package inside the tier-1 `go test
// ./...` net and checks the from-scratch model really registers and
// solves through the declarative spec route main uses.

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestSeriesRegistersAndSolves(t *testing.T) {
	registerSeries()
	res, err := core.SolveSpec(context.Background(), "series n=10 seed=4242", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatal("custom registered model unsolved")
	}
	s := &series{n: 10, cfg: res.Array}
	if s.costOf(res.Array) != 0 {
		t.Fatalf("spec route returned a non-solution: %v", res.Array)
	}
}
