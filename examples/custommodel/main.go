// Custommodel shows that the Adaptive Search engine is model-generic, as
// §III of the paper stresses: any problem expressed as variables + error
// functions can be plugged in. Here we define a fresh model from scratch —
// the All-Interval Series (CSPLib prob007), one of the three CSPs the paper
// relates the CAP to — implement the csp.Model interface inline, REGISTER
// it in the model registry under its own name, and solve it from a
// declarative run spec with exactly the same machinery the CAP uses. Once
// registered, the model is also a first-class citizen of every
// registry-routed surface: core.SolveSpec, batch Spec jobs, and the HTTP
// service's /v1/solve.
//
// (A tuned implementation of this model ships in
// internal/models/allinterval; the point of this example is the from-
// scratch wiring, so the model below is written plainly and re-derives its
// cost on every query.)
//
// Run with:
//
//	go run ./examples/custommodel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/csp"
	"repro/internal/registry"
)

// series is a minimal csp.Model for the All-Interval Series: find a
// permutation s of {0..n−1} whose adjacent absolute differences are all
// distinct. Cost = number of duplicated differences; a variable is blamed
// when one of its adjacent differences is duplicated.
type series struct {
	cfg []int
	n   int
}

func (s *series) Size() int      { return s.n }
func (s *series) Bind(cfg []int) { s.cfg = cfg }
func (s *series) Cost() int      { return s.costOf(s.cfg) }
func (s *series) ExecSwap(i, j int) {
	s.cfg[i], s.cfg[j] = s.cfg[j], s.cfg[i]
}

func (s *series) costOf(cfg []int) int {
	counts := make([]int, s.n)
	cost := 0
	for i := 0; i+1 < s.n; i++ {
		d := cfg[i+1] - cfg[i]
		if d < 0 {
			d = -d
		}
		counts[d]++
		if counts[d] > 1 {
			cost++
		}
	}
	return cost
}

func (s *series) VarCost(i int) int {
	counts := make([]int, s.n)
	for k := 0; k+1 < s.n; k++ {
		d := s.cfg[k+1] - s.cfg[k]
		if d < 0 {
			d = -d
		}
		counts[d]++
	}
	blame := 0
	for _, k := range []int{i - 1, i} {
		if k < 0 || k+1 >= s.n {
			continue
		}
		d := s.cfg[k+1] - s.cfg[k]
		if d < 0 {
			d = -d
		}
		if counts[d] > 1 {
			blame++
		}
	}
	return blame
}

func (s *series) CostIfSwap(i, j int) int {
	s.cfg[i], s.cfg[j] = s.cfg[j], s.cfg[i]
	c := s.costOf(s.cfg)
	s.cfg[i], s.cfg[j] = s.cfg[j], s.cfg[i]
	return c
}

var _ csp.Model = (*series)(nil)

// registerSeries publishes the custom model in the registry: a name, a
// declarative parameter table, a builder and an independent validator.
// Everything that speaks specs — CLI, batch jobs, the HTTP service — can
// now solve "series n=..." without knowing this type exists.
func registerSeries() {
	if err := registry.Register(registry.Entry{
		Name:        "series",
		Description: "All-Interval Series, written from scratch in this example",
		Params: []registry.Param{
			{Name: "n", Description: "series length", Default: 12, Min: 2},
		},
		Build: func(p map[string]int) (func() csp.Model, error) {
			n := p["n"]
			return func() csp.Model { return &series{n: n} }, nil
		},
		Valid: func(p map[string]int, cfg []int) bool {
			if len(cfg) != p["n"] || !csp.IsPermutation(cfg) {
				return false
			}
			s := &series{n: p["n"], cfg: cfg}
			return s.costOf(cfg) == 0
		},
	}); err != nil {
		log.Fatal(err)
	}
}

func main() {
	const n = 20

	registerSeries()

	// One declarative spec drives the registered model through the same
	// method selection and multi-walk machinery as the CAP: here four
	// walkers of the default Adaptive Search engine race on it.
	res, err := core.SolveSpec(context.Background(),
		fmt.Sprintf("series n=%d walkers=4 seed=4242", n), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatal("unsolved")
	}
	sol := res.Array
	fmt.Printf("all-interval series of order %d: %v\n", n, sol)

	diffs := make([]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		d := sol[i+1] - sol[i]
		if d < 0 {
			d = -d
		}
		diffs = append(diffs, d)
	}
	fmt.Printf("adjacent |differences|:        %v\n", diffs)
	fmt.Printf("walker %d solved in %d iterations, %d local minima\n",
		res.Winner, res.Iterations, res.Stats[res.Winner].LocalMinima)
	fmt.Println("\nsame engines, different model — the Adaptive Search contract of §III,")
	fmt.Println("now one registry entry away from any CLI flag or HTTP request.")
}
