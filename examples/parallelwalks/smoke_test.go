package main

// Smoke test: keeps this example package inside the tier-1 `go test
// ./...` net by running a miniature of each mode main demonstrates.

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestParallelModesFlow(t *testing.T) {
	real, err := core.Solve(context.Background(), core.Options{N: 10, Walkers: 4, Seed: 7})
	if err != nil || !real.Solved {
		t.Fatalf("real multi-walk failed: %v", err)
	}
	virt, err := core.Solve(context.Background(), core.Options{N: 10, Walkers: 8, Virtual: true, Seed: 7})
	if err != nil || !virt.Solved {
		t.Fatalf("virtual multi-walk failed: %v", err)
	}
	if cluster.HA8000.Seconds(virt.Iterations) <= 0 {
		t.Fatal("platform mapping returned nonpositive time")
	}
	port, err := core.Solve(context.Background(), core.Options{N: 10, Method: "portfolio", Walkers: 4, Seed: 7})
	if err != nil || !port.Solved {
		t.Fatalf("portfolio failed: %v", err)
	}
}
