// Parallelwalks demonstrates the paper's two parallel execution modes on a
// medium instance:
//
//  1. real independent multi-walk on this machine's cores (§V-A: fork one
//     walker per core, stop everyone when the first solution appears);
//  2. the virtual lockstep cluster, scaling the same algorithm to core
//     counts this machine does not have (32 → 256), and mapping virtual
//     makespans to seconds on the paper's HA8000 — a miniature Table III;
//  3. portfolio mode: the multi-walk is method-agnostic, so one run can
//     mix Adaptive Search with the baseline methods across walkers and
//     the first method to solve wins.
//
// Run with:
//
//	go run ./examples/parallelwalks
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	const n = 16
	const runsPerPoint = 5

	// --- Mode 1: real goroutine multi-walk on the machine's cores.
	workers := runtime.GOMAXPROCS(0)
	res, err := core.Solve(context.Background(), core.Options{N: n, Walkers: workers, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("real multi-walk: %d walkers on %d hardware threads\n", workers, workers)
	fmt.Printf("  solved CAP %d by walker %d after %d iterations (%v wall)\n\n",
		n, res.Winner, res.Iterations, res.WallTime)

	// --- Mode 2: virtual cluster sweep, one row of Table III in miniature.
	fmt.Printf("virtual cluster sweep for CAP %d (%d runs per point, HA8000 rate %.0f iters/s):\n",
		n, runsPerPoint, cluster.HA8000.ItersPerSec)
	fmt.Printf("  %-8s %-14s %-14s %s\n", "cores", "avg virt time", "speedup", "ideal")
	var base float64
	for _, cores := range []int{1, 32, 64, 128, 256} {
		sample := stats.NewSample()
		for r := 0; r < runsPerPoint; r++ {
			vres, err := core.Solve(context.Background(), core.Options{
				N: n, Walkers: cores, Virtual: true, Seed: uint64(cores*1000 + r + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			sample.Add(cluster.HA8000.Seconds(vres.Iterations))
		}
		mean := sample.Mean()
		if base == 0 {
			base = mean
		}
		fmt.Printf("  %-8d %-14s ×%-13.1f ×%d\n", cores,
			fmt.Sprintf("%.4fs", mean), stats.Speedup(base, mean), cores)
	}
	fmt.Println("\nexecution times halve (≈) as the core count doubles — Figure 2's shape.")

	// --- Mode 3: portfolio multi-walk — mix methods across walkers
	// (walker i runs methods[i % len(methods)]).
	methods := []string{"adaptive", "tabu", "hillclimb"}
	pres, err := core.Solve(context.Background(), core.Options{
		N:         n,
		Method:    "portfolio",
		Portfolio: methods,
		Walkers:   6,
		Seed:      7,
	})
	if err != nil || !pres.Solved {
		log.Fatalf("portfolio run failed: %v", err)
	}
	fmt.Printf("\nportfolio multi-walk (%v over %d walkers):\n", methods, len(pres.Stats))
	fmt.Printf("  walker %d (%s) solved CAP %d after %d iterations (%v wall)\n",
		pres.Winner, methods[pres.Winner%len(methods)], n, pres.Iterations, pres.WallTime)
}
