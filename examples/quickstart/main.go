// Quickstart: solve one Costas Array Problem instance with the library's
// default (paper-tuned) Adaptive Search solver and pretty-print the result
// the way §II of the paper presents its order-5 example — grid plus
// difference triangle.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/costas"
)

func main() {
	const n = 14

	res, err := core.Solve(context.Background(), core.Options{N: n, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Solved {
		log.Fatal("unsolved — should not happen without an iteration budget")
	}

	// Print 1-based like the paper's [3,4,2,1,5] example.
	one := make([]int, n)
	for i, v := range res.Array {
		one[i] = v + 1
	}
	fmt.Printf("Costas array of order %d: %v\n\n", n, one)
	fmt.Println(costas.Grid(res.Array))

	fmt.Println("difference triangle (no value repeats within a row):")
	for d, row := range costas.Triangle(res.Array) {
		fmt.Printf("  d=%-2d %v\n", d+1, row)
	}

	s := res.Stats[res.Winner]
	fmt.Printf("\nsolved in %d iterations (%d local minima, %d resets, %v wall time)\n",
		res.Iterations, s.LocalMinima, s.Resets, res.WallTime)
	fmt.Printf("verified: %v\n", core.Verify(res.Array))

	// The same facade drives every search method in the library: pick a
	// baseline with Options.Method ("tabu", "hillclimb", "dialectic"), or
	// "portfolio" to mix all of them across walkers in one run.
	tres, err := core.Solve(context.Background(),
		core.Options{N: n, Method: "tabu", Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame instance with Method \"tabu\": solved=%v in %d neighborhood scans (%v)\n",
		tres.Solved, tres.Iterations, tres.WallTime)
}
