package main

// Smoke test: keeps this example package inside the tier-1 `go test
// ./...` net (compiled and exercised, not just skipped as "[no test
// files]") by running a miniature version of what main demonstrates.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/costas"
)

func TestQuickstartFlow(t *testing.T) {
	res, err := core.Solve(context.Background(), core.Options{N: 10, Seed: 2026})
	if err != nil || !res.Solved {
		t.Fatalf("solve failed: %v", err)
	}
	if !costas.IsCostas(res.Array) {
		t.Fatalf("not a Costas array: %v", res.Array)
	}
	if costas.Grid(res.Array) == "" || len(costas.Triangle(res.Array)) == 0 {
		t.Fatal("pretty-printers returned nothing")
	}
}
