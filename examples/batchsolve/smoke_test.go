package main

// Smoke test: keeps this example package inside the tier-1 `go test
// ./...` net by running a miniature of the batch flows main demonstrates.

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestBatchFlow(t *testing.T) {
	res, err := core.SolveBatch(context.Background(),
		core.BatchCAP([]int{9, 10, 10}, core.Options{}),
		core.BatchOptions{MasterSeed: 3, ReuseEngines: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Solved != 3 || res.Stats.Errors != 0 {
		t.Fatalf("batch stats %+v", res.Stats)
	}
}
