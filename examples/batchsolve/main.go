// Batchsolve demonstrates the throughput layer on top of the unified
// multi-walk scheduler: one core.SolveBatch call drains a stream of mixed
// instances — different orders, different methods — over a bounded worker
// pool, with per-job results and aggregate throughput, the shape a
// server's hot path wants instead of a hand-rolled loop of core.Solve
// calls.
//
// Three aspects are shown:
//
//  1. a mixed batch (orders × methods) solved concurrently, reproducible
//     job for job because per-job seeds derive from one master seed;
//  2. the engine-reuse hot path: homogeneous sequential jobs re-arm a
//     pooled engine through csp.Restartable instead of allocating a fresh
//     model and engine per solve;
//  3. cancellation: a deadline stops the whole batch promptly, returning
//     partial per-job results — no run mode is unstoppable.
//
// Run with:
//
//	go run ./examples/batchsolve
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	// --- 1. A mixed batch: every order 10–14 with every method.
	var jobs []core.BatchJob
	for _, method := range []string{"adaptive", "tabu", "hillclimb", "dialectic"} {
		for n := 10; n <= 14; n++ {
			jobs = append(jobs, core.BatchJob{Options: core.Options{
				N: n, Method: method, Walkers: 4, Virtual: true,
			}})
		}
	}
	res, err := core.SolveBatch(context.Background(), jobs, core.BatchOptions{MasterSeed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed batch: %d jobs (orders 10–14 × 4 methods), %d solved in %v — %.0f solves/s\n",
		res.Stats.Jobs, res.Stats.Solved, res.Stats.WallTime.Round(time.Millisecond), res.Stats.SolvesPerSec)
	for _, jr := range res.Jobs[:3] {
		fmt.Printf("  job %d: n=%d %s → winner %d after %d iterations\n",
			jr.Job, jobs[jr.Job].Options.N, jobs[jr.Job].Options.Method,
			jr.Result.Winner, jr.Result.Iterations)
	}
	fmt.Println("  ... (deterministic: rerunning with the same master seed reproduces every job)")

	// --- 2. The hot path: homogeneous sequential jobs with pooled engines.
	stream := make([]int, 64)
	for i := range stream {
		stream[i] = 13
	}
	hot, err := core.SolveBatch(context.Background(), core.BatchCAP(stream, core.Options{}),
		core.BatchOptions{MasterSeed: 7, ReuseEngines: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhot path: %d × CAP 13, %d solves served by pooled engines — %.0f solves/s\n",
		hot.Stats.Jobs, hot.Stats.EnginesReused, hot.Stats.SolvesPerSec)

	// --- 3. Cancellation: a deadline cuts a hopeless batch short.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	partial, err := core.SolveBatch(ctx, core.BatchCAP([]int{23, 23, 23, 23}, core.Options{Walkers: 4}),
		core.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncancellation: 4 × CAP 23 under a 100ms deadline stopped after %v (%d solved) — every mode honours ctx\n",
		time.Since(start).Round(time.Millisecond), partial.Stats.Solved)
}
