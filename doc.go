// Package repro is a from-scratch Go reproduction of "Parallel local search
// for the Costas Array Problem" (Diaz, Richoux, Caniou, Codognet, Abreu —
// IPDPS Workshops 2012).
//
// The library implements the Adaptive Search constraint-based local search
// method, the paper's Costas Array Problem model (difference triangle,
// weighted error functions, Chang bound, dedicated reset), the independent
// multi-walk parallel scheme with first-solution termination, baselines
// (Dialectic Search, tabu search, hill climbing, a complete CP solver),
// the classical Welch and Lempel–Golomb algebraic constructions over
// finite fields, and the statistical apparatus (run aggregation,
// time-to-target plots with shifted-exponential fits) needed to regenerate
// every table and figure of the paper's evaluation.
//
// All four local-search methods implement one engine interface
// (csp.Engine) with resumable quantum-stepped execution, so the multi-walk
// runner (internal/walk) and the facade (internal/core) are
// method-agnostic: core.Options.Method selects adaptive, tabu, hillclimb,
// dialectic — or "portfolio" to mix methods across the walkers of one run
// — and core.SolveModel drives any csp.Model (N-Queens, All-Interval,
// Magic Square, or your own) through the same machinery.
//
// All run modes share one cancellable scheduler core
// (internal/walk/scheduler.go) parameterised by execution mode (real
// goroutines vs lockstep virtual time) and communication policy
// (independent vs the §VI crossroads pool); on top of it,
// core.SolveBatch is the throughput layer — many instances solved
// concurrently over a bounded worker pool, with engine pooling via
// csp.Restartable for hot serving paths.
//
// Above the facade sits the serving stack: internal/registry names every
// model behind declarative specs ("costas n=18", "nqueens n=64
// method=tabu") with per-entry validation and catalogue metadata, and
// internal/service exposes solve/batch/jobs/models/healthz/metrics over
// HTTP on a bounded worker pool with an async job store.
//
// Where a solve runs is itself pluggable (internal/backend): Local (in
// process), Remote (a solverd node over HTTP) or Pool (a health-checked
// fleet with sharded batches and distributed first-success multi-walk —
// the paper's cluster-scale scheme with machines in place of cores),
// selected through core.Options.Backend; a solverd can front other
// solverds as a coordinator (solverd -workers host1,host2).
//
// Entry points:
//
//   - internal/core — the solving facade (see examples/quickstart);
//   - cmd/costas — CLI solver (-method selects the search method,
//     -model solves any registry spec, -addr submits to a cluster);
//   - cmd/solverd — the HTTP solver daemon (internal/service), worker
//     node or fleet coordinator (internal/backend);
//   - cmd/enumerate — exhaustive enumeration with published-count oracles;
//   - cmd/paperbench — regenerates Tables I–V and Figures 2–4;
//   - bench_test.go (this directory) — testing.B benchmarks, one per
//     table/figure, plus the §IV-B ablations.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-vs-paper results.
package repro
