package repro

// One testing.B benchmark per table and figure of the paper's evaluation
// section, plus the §IV-B ablations. These are micro-scale counterparts of
// cmd/paperbench (which prints the full paper-formatted tables): instance
// sizes are chosen so a single op is milliseconds, making `go test
// -bench=.` complete quickly while still exercising the exact code paths
// each experiment uses. Every benchmark reports iterations/op (engine
// repair iterations) alongside ns/op, since iterations are the
// machine-independent cost unit the paper's analysis is built on.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/costas"
	"repro/internal/cp"
	"repro/internal/csp"
	"repro/internal/dialectic"
	"repro/internal/hillclimb"
	"repro/internal/tabu"
	"repro/internal/walk"
)

const (
	benchSeqN  = 13 // sequential-solve benchmarks
	benchParN  = 13 // multi-walk benchmarks
	benchBaseN = 12 // baseline-solver benchmarks (DS/tabu/HC are slower)
)

func solveOnce(b *testing.B, n int, opts costas.Options, params adaptive.Params, seed uint64) int64 {
	m := costas.New(n, opts)
	e := adaptive.NewEngine(m, params, seed)
	if !e.Solve() {
		b.Fatal("unsolved")
	}
	return e.Stats().Iterations
}

// BenchmarkTableISequential is Table I's unit of work: one sequential
// Adaptive Search solve from a fresh random configuration.
func BenchmarkTableISequential(b *testing.B) {
	b.ReportAllocs()
	var iters int64
	for i := 0; i < b.N; i++ {
		iters += solveOnce(b, benchSeqN, costas.Options{}, costas.TunedParams(benchSeqN), uint64(i)+1)
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
}

// BenchmarkTableIIDialecticVsAS runs the two solvers Table II compares
// under identical conditions; the AS/DS ns-per-op ratio is the table's
// DS/AS column in miniature.
func BenchmarkTableIIDialecticVsAS(b *testing.B) {
	b.Run("AdaptiveSearch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			solveOnce(b, benchBaseN, costas.Options{}, costas.TunedParams(benchBaseN), uint64(i)+1)
		}
	})
	b.Run("DialecticSearch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := costas.New(benchBaseN, costas.Options{})
			s := dialectic.New(m, dialectic.Params{}, uint64(i)+1)
			if !s.Solve() {
				b.Fatal("unsolved")
			}
		}
	})
	b.Run("TabuSearch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := costas.New(benchBaseN, costas.Options{})
			s := tabu.New(m, tabu.Params{}, uint64(i)+1)
			if !s.Solve() {
				b.Fatal("unsolved")
			}
		}
	})
	b.Run("HillClimb", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := costas.New(benchBaseN, costas.Options{})
			s := hillclimb.New(m, hillclimb.Params{}, uint64(i)+1)
			if !s.Solve() {
				b.Fatal("unsolved")
			}
		}
	})
}

// BenchmarkSectionIVCompleteCP is the §IV-C comparison unit: one complete
// CP first-solution search (deterministic, so the work is fixed per op).
func BenchmarkSectionIVCompleteCP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := cp.New(16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.FirstSolution(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchVirtual(b *testing.B, n, cores int) {
	b.ReportAllocs()
	factory := func() csp.Model { return costas.New(n, costas.Options{}) }
	var iters int64
	for i := 0; i < b.N; i++ {
		res := walk.Virtual(context.Background(), factory, walk.Config{
			Walkers:    cores,
			Factory:    adaptive.Factory(costas.TunedParams(n)),
			MasterSeed: uint64(i)*7919 + 1,
		}, 0)
		if !res.Solved {
			b.Fatal("unsolved")
		}
		iters += res.WinnerIterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "winner-iterations/op")
}

// BenchmarkTableIIIMultiWalk is Table III's unit of work: one virtual
// multi-walk solve per HA8000 core count (winner-iterations/op is the
// virtual makespan; watch it fall as cores double).
func BenchmarkTableIIIMultiWalk(b *testing.B) {
	for _, cores := range []int{1, 32, 64, 128, 256} {
		b.Run(benchName("cores", cores), func(b *testing.B) { benchVirtual(b, benchParN, cores) })
	}
}

// BenchmarkTableIVJugene extends the core grid to the Blue Gene/P range.
func BenchmarkTableIVJugene(b *testing.B) {
	for _, cores := range []int{512, 2048, 8192} {
		b.Run(benchName("cores", cores), func(b *testing.B) { benchVirtual(b, benchParN, cores) })
	}
}

// BenchmarkTableVGrid5000 is the GRID'5000 table's unit of work — the
// measurement machinery is identical (rates differ only in reporting), so
// this pins the real-goroutine multi-walk path instead of the virtual one.
func BenchmarkTableVGrid5000(b *testing.B) {
	b.ReportAllocs()
	factory := func() csp.Model { return costas.New(benchParN, costas.Options{}) }
	for i := 0; i < b.N; i++ {
		res := walk.Parallel(context.Background(), factory, walk.Config{
			Walkers:    4,
			Factory:    adaptive.Factory(costas.TunedParams(benchParN)),
			MasterSeed: uint64(i)*104729 + 1,
		})
		if !res.Solved {
			b.Fatal("unsolved")
		}
	}
}

// BenchmarkFig2SpeedupPoint measures the two endpoints of Figure 2's
// speed-up curve (32 vs 256 cores at fixed instance size).
func BenchmarkFig2SpeedupPoint(b *testing.B) {
	b.Run("base32", func(b *testing.B) { benchVirtual(b, benchParN, 32) })
	b.Run("top256", func(b *testing.B) { benchVirtual(b, benchParN, 256) })
}

// BenchmarkFig3JugeneEndpoints measures Figure 3's 512→8192 extremes.
func BenchmarkFig3JugeneEndpoints(b *testing.B) {
	b.Run("base512", func(b *testing.B) { benchVirtual(b, benchParN, 512) })
	b.Run("top8192", func(b *testing.B) { benchVirtual(b, benchParN, 8192) })
}

// BenchmarkFig4TimeToTarget is Figure 4's unit of work: one runtime sample
// for the time-to-target distribution at 32 virtual cores.
func BenchmarkFig4TimeToTarget(b *testing.B) {
	benchVirtual(b, benchParN, 32)
}

// BenchmarkAblation measures the §IV-B model refinements (the bench
// counterpart of `paperbench ablation`).
func BenchmarkAblation(b *testing.B) {
	run := func(opts costas.Options, params adaptive.Params) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var iters int64
			for i := 0; i < b.N; i++ {
				iters += solveOnce(b, benchSeqN, opts, params, uint64(i)+1)
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iterations/op")
		}
	}
	n := benchSeqN
	b.Run("tuned", run(costas.Options{}, costas.TunedParams(n)))
	b.Run("quadraticErr", run(costas.Options{Err: costas.ErrQuadratic}, costas.TunedParams(n)))
	b.Run("fullTriangle", run(costas.Options{FullTriangle: true}, costas.TunedParams(n)))
	b.Run("genericReset", run(costas.Options{GenericReset: true}, costas.TunedParams(n)))
	b.Run("paperParams", run(costas.PaperOptions(), costas.PaperParams(n)))
}

// BenchmarkExtensionCooperative compares the paper's §VI future-work
// dependent multi-walk (crossroads pool) against the independent scheme at
// the same walker count — the extension experiment, not a paper table.
func BenchmarkExtensionCooperative(b *testing.B) {
	factory := func() csp.Model { return costas.New(benchParN, costas.Options{}) }
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := walk.Virtual(context.Background(), factory, walk.Config{
				Walkers:    16,
				Factory:    adaptive.Factory(costas.TunedParams(benchParN)),
				MasterSeed: uint64(i)*6151 + 1,
			}, 0)
			if !res.Solved {
				b.Fatal("unsolved")
			}
		}
	})
	b.Run("cooperative", func(b *testing.B) {
		b.ReportAllocs()
		coopParams := costas.TunedParams(benchParN)
		coopParams.RestartLimit = -1 // the cooperative scheduler owns restarts
		for i := 0; i < b.N; i++ {
			res := walk.Cooperative(context.Background(), factory, walk.CoopConfig{Config: walk.Config{
				Walkers:    16,
				Factory:    adaptive.Factory(coopParams),
				MasterSeed: uint64(i)*6151 + 1,
			}}, 0)
			if !res.Solved {
				b.Fatal("unsolved")
			}
		}
	})
	b.Run("cooperativeParallel", func(b *testing.B) {
		b.ReportAllocs()
		coopParams := costas.TunedParams(benchParN)
		coopParams.RestartLimit = -1
		for i := 0; i < b.N; i++ {
			res := walk.CooperativeParallel(context.Background(), factory, walk.CoopConfig{Config: walk.Config{
				Walkers:    16,
				Factory:    adaptive.Factory(coopParams),
				MasterSeed: uint64(i)*6151 + 1,
			}})
			if !res.Solved {
				b.Fatal("unsolved")
			}
		}
	})
}

// batchOrders is the BenchmarkBatchThroughput workload: a small stream of
// mixed CAP instances, the shape a hot server path sees.
func batchOrders() []int {
	return []int{10, 11, 12, 12, 11, 10, 12, 11}
}

// BenchmarkBatchThroughput compares the three ways to drain a stream of
// instances: a sequential core.Solve loop, core.SolveBatch over the
// worker pool, and the batch with engine reuse. Solves/op is constant
// across sub-benchmarks, so ns/op is directly comparable — the batch
// layer must be at least as fast as the hand-rolled loop.
func BenchmarkBatchThroughput(b *testing.B) {
	orders := batchOrders()
	b.Run("sequentialLoop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, n := range orders {
				res, err := core.Solve(context.Background(),
					core.Options{N: n, Seed: uint64(i*len(orders)+j)*2654435761 + 1})
				if err != nil || !res.Solved {
					b.Fatalf("unsolved: %v", err)
				}
			}
		}
	})
	run := func(reuse bool) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.SolveBatch(context.Background(),
					core.BatchCAP(orders, core.Options{}),
					core.BatchOptions{MasterSeed: uint64(i)*7919 + 1, ReuseEngines: reuse})
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Solved != len(orders) {
					b.Fatalf("batch left jobs unsolved: %+v", res.Stats)
				}
			}
		}
	}
	b.Run("batch", run(false))
	b.Run("batchReuse", run(true))
}

// BenchmarkBatchVirtualMixed drives the acceptance-shaped batch — mixed
// orders × mixed methods on the virtual cluster — through the worker
// pool, the batch counterpart of the per-table virtual benches above.
func BenchmarkBatchVirtualMixed(b *testing.B) {
	b.ReportAllocs()
	var jobs []core.BatchJob
	for _, method := range []string{"adaptive", "tabu", "hillclimb", "dialectic"} {
		for _, n := range []int{10, 11, 12} {
			jobs = append(jobs, core.BatchJob{Options: core.Options{
				N: n, Method: method, Walkers: 4, Virtual: true,
			}})
		}
	}
	for i := 0; i < b.N; i++ {
		res, err := core.SolveBatch(context.Background(), jobs,
			core.BatchOptions{MasterSeed: uint64(i)*104729 + 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.Solved != len(jobs) {
			b.Fatalf("batch left jobs unsolved: %+v", res.Stats)
		}
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}
