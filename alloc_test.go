package repro

// Allocation discipline for the CAP hot path: after Bind, the steady-state
// Adaptive Search solve loop — culprit selection, min-conflict probing via
// the read-only SwapDelta kernel, commits, resets, restarts — performs ZERO
// heap allocations. cmd/perfbench -smoke gates CI on the same property via
// benchmark allocs/op; this test pins it exactly with testing.AllocsPerRun.

import (
	"testing"

	"repro/internal/adaptive"
	"repro/internal/costas"
	"repro/internal/rng"
)

func TestSteadyStateSolveLoopZeroAllocs(t *testing.T) {
	const n = 16
	m := costas.New(n, costas.Options{})
	e := adaptive.NewEngine(m, costas.TunedParams(n), 3)
	scratch := make([]int, n)
	r := rng.New(11)
	// Warm up past one-time work (initial VarCost recompute, first reset)
	// so the measurement sees only the steady state.
	e.Step(2048)
	avg := testing.AllocsPerRun(100, func() {
		if e.Solved() {
			r.PermInto(scratch)
			e.RestartFrom(scratch)
		}
		e.Step(64)
	})
	if avg != 0 {
		t.Fatalf("steady-state solve loop allocates %.2f allocs/run (want 0): the hot path regressed", avg)
	}
}
