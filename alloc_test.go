package repro

// Allocation discipline for the CAP hot path: after Bind, the steady-state
// Adaptive Search solve loop — culprit selection, min-conflict probing via
// the read-only SwapDelta kernel, commits, resets, restarts — performs ZERO
// heap allocations. cmd/perfbench -smoke gates CI on the same property via
// benchmark allocs/op; this test pins it exactly with testing.AllocsPerRun.

import (
	"testing"

	"repro/internal/adaptive"
	"repro/internal/costas"
	"repro/internal/rng"
)

// TestPerSolveSetupAllocBudget pins the one-time per-solve setup cost that
// table1/sequential_n13 pays on every operation: a whole costas.Model is 4
// heap allocations (3 when n > 32 and the bit-plane scan cache is absent)
// because all []int scratch shares one arena, the int32 slabs ride on the
// counter block, and the plane words share one uint64 arena with the plane
// log; an adaptive.Engine adds 5 more (engine, RNG, tabu block, the shared
// bestJs/deltas arena, and the initial configuration). Any slice that stops
// sharing its arena shows up here as an extra allocation.
func TestPerSolveSetupAllocBudget(t *testing.T) {
	cases := []struct {
		n           int
		model, full float64 // costas.New alone; New + adaptive.NewEngine
	}{
		{13, 4, 9}, // table1's instance: 9 allocs/op is the whole setup
		{32, 4, 9}, // widest order with the bit-plane cache
		{33, 3, 8}, // first order without it (rows wider than one word)
	}
	for _, tc := range cases {
		model := testing.AllocsPerRun(50, func() {
			_ = costas.New(tc.n, costas.Options{})
		})
		if model != tc.model {
			t.Errorf("n=%d: costas.New costs %.0f allocs (want %.0f)", tc.n, model, tc.model)
		}
		full := testing.AllocsPerRun(50, func() {
			m := costas.New(tc.n, costas.Options{})
			_ = adaptive.NewEngine(m, costas.TunedParams(tc.n), 1)
		})
		if full != tc.full {
			t.Errorf("n=%d: model+engine setup costs %.0f allocs (want %.0f)", tc.n, full, tc.full)
		}
	}
}

func TestSteadyStateSolveLoopZeroAllocs(t *testing.T) {
	const n = 16
	m := costas.New(n, costas.Options{})
	e := adaptive.NewEngine(m, costas.TunedParams(n), 3)
	scratch := make([]int, n)
	r := rng.New(11)
	// Warm up past one-time work (initial VarCost recompute, first reset)
	// so the measurement sees only the steady state.
	e.Step(2048)
	avg := testing.AllocsPerRun(100, func() {
		if e.Solved() {
			r.PermInto(scratch)
			e.RestartFrom(scratch)
		}
		e.Step(64)
	})
	if avg != 0 {
		t.Fatalf("steady-state solve loop allocates %.2f allocs/run (want 0): the hot path regressed", avg)
	}
}
